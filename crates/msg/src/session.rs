//! Persistent worker-pool sessions.
//!
//! The runtimes historically spawned a fresh thread per worker on **every
//! call** and joined them all at the end — pure overhead once a workload
//! runs many back-to-back products (benches, parameter sweeps, the
//! experiment suite). A [`Session`] spawns the star's worker threads
//! **once**, parks each of them on its endpoint's blocking receive, and
//! serves an unbounded sequence of runs:
//!
//! * the master marks the start of a run by sending every enrolled worker
//!   a `RUN_BEGIN` control frame (carrying one `u32` run parameter, e.g.
//!   the block side `q`);
//! * the worker's *program* — a caller-supplied closure holding whatever
//!   per-worker state it wants to persist across runs (scratch blocks,
//!   buffer pools) — serves the run's frames until it sees the matching
//!   `RUN_END` control frame, then returns to the parked outer loop;
//! * a [`Frame::shutdown`] (or the master endpoint dropping) terminates
//!   the thread for good.
//!
//! Between runs a worker costs nothing: it is blocked in the channel's
//! own blocking receive (condvar parking), not polling. This
//! is also the shape a future socket transport attaches to — a remote
//! worker process is exactly a session worker whose endpoint happens to
//! be a socket.
//!
//! [`SessionPool`] adds process-wide reuse: keyed by the platform
//! fingerprint, it hands out one shared session per distinct platform so
//! the `MWP_RUNTIME=session` mode (see [`runtime_mode`]) can route the
//! one-shot `run_*` entry points through pooled workers without any API
//! change for callers.

use crate::auth;
use crate::endpoint::{MasterEndpoint, WorkerEndpoint};
use crate::frame::{Frame, FrameKind};
use crate::link::Pacing;
use crate::net::StarNetwork;
use crate::port::OnePort;
use crate::transport::{
    self, RemoteLink, TransportListener, TransportMode, Welcome, SERVICE_INPROC,
};
use mwp_platform::{Platform, WorkerId, WorkerParams};
use mwp_trace::{record, Activity, ActivityKind, Resource, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

// The run-lifecycle sentinels and frame constructors live in
// [`crate::lifecycle`] — one documented module owns the `tag.i` magic
// values. Re-exported here because the session layer is where callers
// (the runtimes' worker programs) actually match on them.
pub use crate::lifecycle::{
    run_abort_frame, run_begin_frame, run_end_frame, RUN_ABORT, RUN_BEGIN, RUN_END,
};

/// How a worker program left a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The run ended with `RUN_END`; the worker parks for the next run.
    Completed,
    /// Shutdown (explicit frame or closed channel): the thread exits.
    Terminate,
}

/// Opaque receipt returned by [`Session::begin_run`]: remembers the
/// session's block counters at run start so [`Session::finish_run`] can
/// report the run's own traffic even though the underlying link stats
/// accumulate for the session's whole lifetime — and holds the session's
/// run-exclusion lock, so a second `begin_run` from another thread blocks
/// until this run is finished (a session serves **one run at a time**;
/// an interleaved `RUN_BEGIN` would be misread by an in-run worker).
#[must_use = "pass the epoch back to finish_run to close the run"]
pub struct RunEpoch<'s> {
    blocks_at_start: u64,
    /// The generation this run stamps its frames with.
    run: u32,
    /// Trace time of the `RUN_BEGIN` (recorded only while tracing is on):
    /// `finish_run`/`abort_run` close the lifecycle span against it.
    begun: Option<SimTime>,
    _exclusive: parking_lot::MutexGuard<'s, ()>,
}

/// Receipt for an open **job run** (see [`Session::begin_job`]): an
/// interleaved run identified purely by its generation, with no
/// exclusion lock — several may be in flight on one session at once.
/// Pass it back to [`Session::finish_job`] or [`Session::abort_job`] to
/// retire the generation.
#[must_use = "pass the job back to finish_job/abort_job to retire its generation"]
#[derive(Debug)]
pub struct JobRun {
    run: u32,
    /// Trace time of the `RUN_BEGIN` (recorded only while tracing is on).
    begun: Option<SimTime>,
}

impl JobRun {
    /// The run generation this job's frames are stamped with.
    pub fn generation(&self) -> u32 {
        self.run
    }
}

/// Record the zero-length `RUN_BEGIN` lifecycle marker for generation
/// `run` and return its timestamp (`None` while tracing is off — the
/// off path is one atomic check).
fn trace_run_begin(run: u32) -> Option<SimTime> {
    if !record::enabled() {
        return None;
    }
    let t = record::now();
    record::record(
        Activity::new(
            Resource::Master,
            ActivityKind::Run,
            WorkerId(0),
            t,
            t,
            "RUN_BEGIN".into(),
        )
        .with_run(run),
    );
    Some(t)
}

/// Close a run-lifecycle span opened at `begun` with its outcome label
/// (`RUN_END` or `RUN_ABORT`), then flush the env sink — run boundaries
/// are where streamed trace files grow and the recorder's memory resets.
fn trace_run_close(run: u32, begun: Option<SimTime>, label: &'static str) {
    if let Some(begun) = begun {
        record::record(
            Activity::new(
                Resource::Master,
                ActivityKind::Run,
                WorkerId(0),
                begun,
                record::now(),
                label.into(),
            )
            .with_run(run),
        );
    }
    record::flush();
}

/// A star network whose worker threads are spawned once and reused for an
/// unbounded sequence of runs (one at a time — concurrent callers
/// serialize on [`Session::begin_run`]).
pub struct Session {
    master: MasterEndpoint,
    handles: Vec<thread::JoinHandle<()>>,
    /// Socket-transport pump threads (empty on the channel transport),
    /// joined silently at teardown after the workers.
    pumps: Vec<thread::JoinHandle<()>>,
    /// Fingerprint bytes each enrolled connection presented (socket
    /// transports only; empty per worker on the channel transport).
    fingerprints: Vec<Vec<u8>>,
    /// The pacing every link was attached with — kept so workers
    /// admitted later ([`Session::admit`]) join under identical terms.
    pacing: Pacing,
    /// The **membership epoch**: which generation of this fleet is
    /// current. Starts at 1 and is bumped by every membership change
    /// (`admit`, a non-empty `prune_dead`), stamped into each welcome,
    /// and checked at the door — a connection presenting a previous
    /// generation's epoch is stale (or a replay) and is rejected.
    epoch: u64,
    /// The fleet secret (`MWP_FLEET_SECRET` at construction) keying the
    /// enrollment MACs for this session's whole lifetime, including
    /// later `admit`s.
    secret: Vec<u8>,
    /// The **run generation**: a per-session monotonically increasing
    /// counter, bumped by every [`Session::begin_run`]. The current value
    /// is published to every link for the duration of a run (0 between
    /// runs), stamped into each frame's wire header, and checked on
    /// receive — a data frame from any other generation is structurally
    /// rejected, whoever sent it. (Atomic only because `begin_run` takes
    /// `&self`; the run lock already serializes runs.)
    run_gen: AtomicU32,
    /// Held from `begin_run` to `finish_run` via the [`RunEpoch`].
    run_lock: Mutex<()>,
}

impl Session {
    /// Wire the star for `platform` and spawn one parked worker thread per
    /// platform worker. `factory` is called once per worker (on the
    /// calling thread) to build that worker's *program*: the closure that
    /// serves one run's frames and returns how it exited. State captured
    /// by the program persists across runs — that is the point.
    ///
    /// The byte transport under the star is chosen by `MWP_TRANSPORT`
    /// (see [`transport::transport_mode`]): in-process channels by
    /// default, or loopback TCP/Unix sockets — same worker threads, same
    /// programs, but every frame truly crosses the socket stack. Use
    /// [`Session::spawn_with_transport`] to pick explicitly.
    pub fn spawn<F, P>(platform: &Platform, time_scale: f64, factory: F) -> Session
    where
        F: FnMut(WorkerId, WorkerParams) -> P,
        P: FnMut(u32, &WorkerEndpoint) -> RunExit + Send + 'static,
    {
        Self::spawn_with_transport(platform, time_scale, transport::transport_mode(), factory)
    }

    /// [`Session::spawn`] with an explicit [`TransportMode`] (ignoring
    /// `MWP_TRANSPORT`) — how tests cross-validate the channel and socket
    /// backends against each other inside one process.
    pub fn spawn_with_transport<F, P>(
        platform: &Platform,
        time_scale: f64,
        mode: TransportMode,
        mut factory: F,
    ) -> Session
    where
        F: FnMut(WorkerId, WorkerParams) -> P,
        P: FnMut(u32, &WorkerEndpoint) -> RunExit + Send + 'static,
    {
        match mode {
            TransportMode::Channel => {
                let (master, workers) = StarNetwork::build(platform, time_scale).into_endpoints();
                let handles = platform
                    .iter()
                    .zip(workers)
                    .map(|((id, params), ep)| {
                        let mut program = factory(id, *params);
                        thread::Builder::new()
                            .name(format!("mwp-worker-{}", id.index()))
                            .spawn(move || worker_loop(ep, &mut program))
                            .expect("spawn session worker thread")
                    })
                    .collect();
                Session {
                    master,
                    handles,
                    pumps: Vec::new(),
                    fingerprints: vec![Vec::new(); platform.len()],
                    pacing: Pacing { time_scale },
                    epoch: 1,
                    secret: auth::fleet_secret(),
                    run_gen: AtomicU32::new(0),
                    run_lock: Mutex::new(()),
                }
            }
            socket_mode => Self::spawn_loopback(platform, time_scale, socket_mode, &mut factory),
        }
    }

    /// The loopback-socket star: worker threads live in this process (as
    /// on the channel transport, so panics still propagate through
    /// `shutdown`) but each one dials the master's listener and enrolls
    /// over the wire — every frame of every run crosses a real socket.
    fn spawn_loopback<F, P>(
        platform: &Platform,
        time_scale: f64,
        mode: TransportMode,
        factory: &mut F,
    ) -> Session
    where
        F: FnMut(WorkerId, WorkerParams) -> P,
        P: FnMut(u32, &WorkerEndpoint) -> RunExit + Send + 'static,
    {
        let listener = TransportListener::bind(mode).expect("bind loopback listener");
        let endpoint = listener.endpoint();
        let secret = auth::fleet_secret();
        let fp = fingerprint_bytes(&fingerprint(platform, time_scale));
        let handles: Vec<_> = platform
            .iter()
            .map(|(id, params)| {
                let mut program = factory(id, *params);
                let endpoint = endpoint.clone();
                let fp = fp.clone();
                thread::Builder::new()
                    .name(format!("mwp-worker-{}", id.index()))
                    .spawn(move || {
                        let stream = transport::connect_with_retry(
                            &endpoint,
                            std::time::Duration::from_secs(10),
                        )
                        .expect("loopback connect");
                        let (ep, _welcome) =
                            transport::enroll(stream, Some(id), &fp).expect("loopback enroll");
                        worker_loop(ep, &mut program)
                    })
                    .expect("spawn session worker thread")
            })
            .collect();
        let (master, pumps, fingerprints) = accept_star(
            &listener,
            platform,
            time_scale,
            SERVICE_INPROC,
            Some(&fp),
            &handles,
            &secret,
            1,
        )
        .expect("accept loopback workers");
        Session {
            master,
            handles,
            pumps,
            fingerprints,
            pacing: Pacing { time_scale },
            epoch: 1,
            secret,
            run_gen: AtomicU32::new(0),
            run_lock: Mutex::new(()),
        }
    }

    /// Build a session whose workers are **remote processes**: accept one
    /// connection per platform worker from `listener` (each a `mwp-worker`
    /// process, or any peer speaking the enrollment handshake), assign
    /// slots in arrival order (or honor a claimed slot), and reply to each
    /// with its link/memory parameters and `service` — the id telling the
    /// worker which program to run ([`transport::SERVICE_MATRIX`],
    /// [`transport::SERVICE_LU`]).
    ///
    /// The returned session is driven exactly like a local one: the
    /// one-port arbiter, pacing, and statistics all live on this side.
    /// `shutdown` sends every remote worker a shutdown frame; an orderly
    /// worker process exits on it, which is what terminates the link's
    /// pump threads.
    pub fn accept_remote(
        platform: &Platform,
        time_scale: f64,
        listener: &TransportListener,
        service: u8,
    ) -> io::Result<Session> {
        let secret = auth::fleet_secret();
        let (master, pumps, fingerprints) =
            accept_star(listener, platform, time_scale, service, None, &[], &secret, 1)?;
        Ok(Session {
            master,
            handles: Vec::new(),
            pumps,
            fingerprints,
            pacing: Pacing { time_scale },
            epoch: 1,
            secret,
            run_gen: AtomicU32::new(0),
            run_lock: Mutex::new(()),
        })
    }

    /// **Elastic enrollment**: accept and enroll one more worker from
    /// `listener` *between runs*, growing the fleet by one slot. The new
    /// worker gets the next free id (a claimed slot must match it),
    /// `params` as its link/memory terms, and the session's own pacing;
    /// its link joins the one-port arbiter like any original member, so
    /// the next run's selection algorithms see it automatically.
    ///
    /// Exclusivity with runs is structural: `admit` takes `&mut self`,
    /// which cannot coexist with an open [`RunEpoch`] borrow.
    ///
    /// Admission is a membership change, so the session's epoch is
    /// bumped and the newcomer's welcome carries the **new** epoch —
    /// every welcome issued before this admit is thereby stale.
    pub fn admit(
        &mut self,
        listener: &TransportListener,
        params: WorkerParams,
        service: u8,
    ) -> io::Result<WorkerId> {
        let mut stream = listener.accept()?;
        let peer = stream.peer();
        let challenge = transport::master_challenge(stream.as_mut())?;
        let hello =
            transport::master_read_hello(stream.as_mut(), &self.secret, &challenge, self.epoch)?;
        let id = WorkerId(self.master.workers());
        if let Some(claimed) = hello.claimed {
            if claimed != id {
                let reason = format!(
                    "{peer} claimed slot {} but the next open slot is {}",
                    claimed.index(),
                    id.index()
                );
                transport::send_reject(stream.as_mut(), transport::REJECT_SLOT, &reason);
                return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
            }
        }
        self.epoch += 1;
        stream.send_frame(&transport::welcome_frame(
            &Welcome {
                worker: id,
                c: params.c,
                w: params.w,
                m: params.m as u64,
                time_scale: self.pacing.time_scale,
                service,
                epoch: self.epoch,
            },
            &self.secret,
            &hello.nonce,
        ))?;
        // Same deadline discipline as `accept_star`: liveness read
        // deadline in place before the split so the in-pump's cloned
        // reader carries it.
        stream.set_read_timeout(transport::liveness().map(|(_, deadline)| deadline))?;
        let (reader, writer) = stream.split()?;
        let (side, link_pumps) =
            RemoteLink::attach(reader, writer, params.c, self.pacing, id).into_parts();
        let assigned = self.master.add_link(side);
        debug_assert_eq!(assigned, id);
        self.fingerprints.push(hello.fingerprint);
        self.pumps.extend(link_pumps);
        Ok(id)
    }

    /// **Elastic disenrollment**: drop every link whose death flag is
    /// set (heartbeat deadline missed, socket error, or an explicit
    /// `mark_dead` from a failure-aware scheduler), compacting the
    /// surviving workers down to ids `0..workers()`. Returns the
    /// removed workers' **pre-prune** indices, ascending, so callers
    /// tracking per-worker state (e.g. a platform description) can
    /// compact in lockstep.
    ///
    /// Survivors shifting down is safe: master-side routing is purely
    /// structural (links are addressed by index) and no data frame
    /// carries a worker id, so neither side needs renumbering. A pruned
    /// link that was still half-alive gets a shutdown frame from its
    /// dying out-pump, so a wrongly-condemned worker process exits
    /// orderly instead of leaking.
    pub fn prune_dead(&mut self) -> Vec<usize> {
        let mut removed = Vec::new();
        let mut idx = 0;
        let mut original = 0;
        while idx < self.master.workers() {
            if self.master.is_dead(WorkerId(idx)) {
                drop(self.master.remove_link(idx));
                self.fingerprints.remove(idx);
                removed.push(original);
            } else {
                idx += 1;
            }
            original += 1;
        }
        if !removed.is_empty() {
            // A membership change: welcomes issued to the old fleet are
            // now stale, so redialing a dead worker's old epoch at the
            // door gets rejected instead of resurrecting a ghost slot.
            self.epoch += 1;
            // Reap the pump threads the dropped links no longer need.
            // They exit on their own — the in-pump on the dead socket,
            // the out-pump when the link's channel sender drops — but
            // possibly not instantly, so only finished ones are joined
            // here; stragglers wait for teardown.
            let pumps = std::mem::take(&mut self.pumps);
            for pump in pumps {
                if pump.is_finished() {
                    let _ = pump.join();
                } else {
                    self.pumps.push(pump);
                }
            }
        }
        removed
    }

    /// How many enrolled workers are currently flagged dead (their
    /// links will be dropped by the next [`Session::prune_dead`]).
    pub fn dead_workers(&self) -> usize {
        (0..self.master.workers()).filter(|&i| self.master.is_dead(WorkerId(i))).count()
    }

    /// The fingerprint bytes each worker presented at enrollment, in slot
    /// order (empty for channel-transport workers, which never enroll).
    pub fn worker_fingerprints(&self) -> &[Vec<u8>] {
        &self.fingerprints
    }

    /// The master endpoint (valid for the session's whole lifetime).
    pub fn master(&self) -> &MasterEndpoint {
        &self.master
    }

    /// The current membership epoch: 1 for a fresh fleet, bumped by every
    /// [`Session::admit`] and every non-empty [`Session::prune_dead`].
    /// Runtimes key their cached resource selection on this — a changed
    /// epoch means the plan must be recomputed before the next run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of pooled workers.
    pub fn workers(&self) -> usize {
        self.master.workers()
    }

    /// Open a run on workers `0..enrolled`, waking each from its parked
    /// receive with a `RUN_BEGIN` frame carrying `param`. Workers outside
    /// the enrollment stay parked and cost nothing.
    ///
    /// Lifecycle frames are sent best-effort: a worker that already died
    /// (it panicked mid-previous-run) must surface as the data path's
    /// "worker died" receive failure — or as the worker's own panic at
    /// join time — not as an unrelated send panic here.
    pub fn begin_run(&self, enrolled: usize, param: u32) -> RunEpoch<'_> {
        // One run at a time: a concurrent caller parks here until the
        // in-flight run's epoch is consumed by `finish_run`.
        let exclusive = self.run_lock.lock();
        // Bump the run generation and publish it to every link *before*
        // the RUN_BEGIN frames go out, so the begin frame itself is
        // stamped with the generation it opens — that is how workers
        // learn it.
        let run = self.next_run_gen();
        self.master.set_run(run);
        let begun = trace_run_begin(run);
        let blocks_at_start = self.master.total_blocks();
        for idx in 0..enrolled {
            self.master.send_lossy(WorkerId(idx), run_begin_frame(param));
        }
        RunEpoch { blocks_at_start, run, begun, _exclusive: exclusive }
    }

    /// Close the run opened by the matching [`Session::begin_run`]: sends
    /// `RUN_END` to the enrolled workers (parking them again, best-effort
    /// like [`Session::begin_run`]) and returns the matrix blocks this
    /// run moved through the port.
    pub fn finish_run(&self, enrolled: usize, epoch: RunEpoch<'_>) -> u64 {
        for idx in 0..enrolled {
            self.master.send_lossy(WorkerId(idx), run_end_frame());
        }
        let moved = self.master.total_blocks() - epoch.blocks_at_start;
        // Back to "no run in progress": anything still in flight from
        // this run arrives stale and is structurally rejected.
        self.master.set_run(0);
        trace_run_close(epoch.run, epoch.begun, "RUN_END");
        moved
    }

    /// Abort the run opened by the matching [`Session::begin_run`]: each
    /// enrolled worker gets a `RUN_ABORT` control frame — which, FIFO
    /// order being per-link, is the last frame of the aborted run it
    /// sees, so it drains whatever data frames were already queued, keeps
    /// its scratch intact, and parks for the next run. Frames the workers
    /// had already sent back are left un-received; they carry the aborted
    /// generation, so the next run's receives structurally reject them.
    /// Returns the blocks the aborted run moved before it was killed.
    pub fn abort_run(&self, enrolled: usize, epoch: RunEpoch<'_>) -> u64 {
        for idx in 0..enrolled {
            self.master.send_lossy(WorkerId(idx), run_abort_frame());
        }
        let moved = self.master.total_blocks() - epoch.blocks_at_start;
        self.master.set_run(0);
        trace_run_close(epoch.run, epoch.begun, "RUN_ABORT");
        moved
    }

    /// Draw the next run generation, skipping the reserved "no run"
    /// value 0 on wraparound: a long-lived serving session that crosses
    /// 2³² runs must not stamp generation 0 — every one of that run's
    /// data frames would be structurally rejected as "between runs".
    fn next_run_gen(&self) -> u32 {
        loop {
            let run = self.run_gen.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
            if run != 0 {
                return run;
            }
        }
    }

    /// Set the run-generation counter (the **next** run gets `value + 1`,
    /// modulo the skip-0 rule). A hook for wraparound tests and for
    /// serving layers that checkpoint/restore a long-lived session; never
    /// call it while a run or job is in flight.
    pub fn force_run_gen(&self, value: u32) {
        self.run_gen.store(value, Ordering::Relaxed);
    }

    /// Open a **job run** on workers `0..enrolled`: like
    /// [`Session::begin_run`] but *without* taking the run-exclusion lock
    /// — the run's generation is registered at every link alongside any
    /// other live job generations, so several jobs interleave their
    /// frames on the same links and the master demultiplexes replies by
    /// the header's `run` field ([`MasterEndpoint::recv_run_timeout`]).
    ///
    /// The caller contract replaces the lock: every frame the job's
    /// driver sends must be pre-stamped with [`JobRun::generation`] (the
    /// link stamps only unstamped frames, with the *legacy* generation),
    /// receives must go through the `recv_run_*` demux paths, and worker
    /// programs must be multi-run aware (track state per generation,
    /// reply via [`WorkerEndpoint::send_in`]). Legacy exclusive runs and
    /// job runs must not be mixed on one session — the serving layer
    /// owns its session outright.
    ///
    /// At most [`crate::link::MAX_CONCURRENT_RUNS`] job runs may be open
    /// at once; the scheduler's admission cap enforces this.
    pub fn begin_job(&self, enrolled: usize, param: u32) -> JobRun {
        let run = self.next_run_gen();
        // Register before the RUN_BEGIN goes out: the begin frame itself
        // carries the generation (that is how workers learn it), and the
        // first replies may race the registration otherwise.
        self.master.register_run(run);
        let begun = trace_run_begin(run);
        for idx in 0..enrolled {
            let mut begin = run_begin_frame(param);
            begin.run = run;
            self.master.send_lossy(WorkerId(idx), begin);
        }
        JobRun { run, begun }
    }

    /// Close the job run opened by the matching [`Session::begin_job`]:
    /// `RUN_END` (stamped with the job's generation) to the enrolled
    /// workers, then the generation is retired — its data frames are
    /// stale again, and anything still parked in the demux queues is
    /// dropped and counted as rejected.
    pub fn finish_job(&self, enrolled: usize, job: JobRun) {
        for idx in 0..enrolled {
            let mut end = run_end_frame();
            end.run = job.run;
            self.master.send_lossy(WorkerId(idx), end);
        }
        self.master.deregister_run(job.run);
        trace_run_close(job.run, job.begun, "RUN_END");
    }

    /// Abort the job run opened by the matching [`Session::begin_job`]:
    /// the generation-stamped counterpart of [`Session::abort_run`] —
    /// per-link FIFO makes the `RUN_ABORT` the last frame of this job a
    /// worker sees, so it discards that generation's state and keeps
    /// serving any other in-flight job untouched.
    pub fn abort_job(&self, enrolled: usize, job: JobRun) {
        for idx in 0..enrolled {
            let mut abort = run_abort_frame();
            abort.run = job.run;
            self.master.send_lossy(WorkerId(idx), abort);
        }
        self.master.deregister_run(job.run);
        trace_run_close(job.run, job.begun, "RUN_ABORT");
    }

    /// Total inbound data frames this session's links rejected for
    /// carrying a stale run generation (see [`crate::stats`]).
    pub fn stale_rejections(&self) -> u64 {
        self.master.stale_rejections()
    }

    /// Orderly shutdown: sends every worker a shutdown frame and joins its
    /// thread. Returns the number of workers joined; propagates a worker
    /// panic to the caller.
    pub fn shutdown(mut self) -> usize {
        self.teardown(true)
    }

    fn teardown(&mut self, propagate_panics: bool) -> usize {
        for idx in 0..self.master.workers() {
            // Best-effort: a worker that already exited (panic, closed
            // channel) must not turn teardown into a send panic.
            self.master.send_lossy(WorkerId(idx), Frame::shutdown());
        }
        let mut joined = 0;
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(()) => joined += 1,
                Err(payload) if propagate_panics => std::panic::resume_unwind(payload),
                Err(_) => {}
            }
        }
        // Socket transports: the shutdown frames just forwarded end the
        // out-pumps; the workers closing their sockets (thread return or
        // remote process exit) ends the in-pumps. Pump panics are never
        // propagated — they carry no run state.
        for pump in self.pumps.drain(..) {
            let _ = pump.join();
        }
        joined
    }
}

impl Drop for Session {
    /// Dropping a session shuts it down: workers get the shutdown frame
    /// and are joined (panics are swallowed — the master is often already
    /// unwinding when a drop-path teardown runs).
    fn drop(&mut self) {
        self.teardown(false);
    }
}

/// What [`accept_star`] assembles: the master endpoint over the accepted
/// links, the links' pump threads, and each slot's enrollment
/// fingerprint.
type AcceptedStar = (MasterEndpoint, Vec<thread::JoinHandle<()>>, Vec<Vec<u8>>);

/// Accept enrollments from `listener` until every one of
/// `platform.len()` slots is filled, wiring each into a [`RemoteLink`]:
/// the master-facing halves assemble into a [`MasterEndpoint`]
/// indistinguishable from the channel transport's. Slots are honored
/// when claimed (loopback worker threads know their id), assigned in
/// arrival order otherwise (remote processes ask with `CLAIM_ANY`);
/// `expect_fp`, when given, must match every hello's fingerprint.
///
/// A connection that fails enrollment — garbage instead of a hello, an
/// out-of-range or taken slot claim, a foreign fingerprint, an
/// oversized handshake frame, or a peer that simply goes silent (its
/// handshake reads run under [`transport::handshake_timeout`]) — is
/// **dropped and the loop keeps accepting**: on a network-reachable
/// listener a stray port scan or held-open health probe must not abort
/// or park the star's startup. Only a listener-level `accept` failure
/// aborts — plus, when `watch` is non-empty (the loopback transport), a
/// watched worker thread dying before its slot fills, which would
/// otherwise leave this loop waiting for a connection that can never
/// arrive.
#[allow(clippy::too_many_arguments)]
fn accept_star(
    listener: &TransportListener,
    platform: &Platform,
    time_scale: f64,
    service: u8,
    expect_fp: Option<&[u8]>,
    watch: &[thread::JoinHandle<()>],
    secret: &[u8],
    epoch: u64,
) -> io::Result<AcceptedStar> {
    let pacing = Pacing { time_scale };
    let p = platform.len();
    let mut sides: Vec<Option<crate::link::MasterSide>> = (0..p).map(|_| None).collect();
    let mut fingerprints = vec![Vec::new(); p];
    let mut pumps = Vec::with_capacity(2 * p);
    let mut filled = 0usize;
    while filled < p {
        let stream = if watch.is_empty() {
            listener.accept()?
        } else {
            // Interleave accepting with a liveness check on the local
            // worker threads that are supposed to dial in: if one died
            // (connect/enroll panic) its slot can never fill, and
            // blocking forever would turn that failure into a hang.
            match listener.accept_timeout(std::time::Duration::from_millis(250))? {
                Some(stream) => stream,
                None => {
                    if watch.iter().any(|h| h.is_finished()) {
                        return Err(io::Error::other(
                            "a loopback worker thread died before enrolling",
                        ));
                    }
                    continue;
                }
            }
        };
        // Per-connection enrollment; an Err here condemns only this
        // connection (dropped on scope exit), never the star. The
        // handshake runs on the unsplit stream under a read deadline and
        // the handshake wire-length budget.
        let enroll_one = || -> io::Result<()> {
            let mut stream = stream;
            let peer = stream.peer();
            let challenge = transport::master_challenge(stream.as_mut())?;
            let hello =
                transport::master_read_hello(stream.as_mut(), secret, &challenge, epoch)?;
            let id = match hello.claimed {
                Some(id) if id.index() < p && sides[id.index()].is_none() => id,
                Some(id) => {
                    let reason =
                        format!("{peer} claimed slot {} (out of range or taken)", id.index());
                    transport::send_reject(stream.as_mut(), transport::REJECT_SLOT, &reason);
                    return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
                }
                None => WorkerId(
                    (0..p).find(|&i| sides[i].is_none()).expect("filled < p: a slot is free"),
                ),
            };
            if let Some(expected) = expect_fp {
                if hello.fingerprint != expected {
                    let reason = format!("{peer} enrolled with a foreign platform fingerprint");
                    transport::send_reject(
                        stream.as_mut(),
                        transport::REJECT_FINGERPRINT,
                        &reason,
                    );
                    return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
                }
            }
            let params = platform.workers()[id.index()];
            stream.send_frame(&transport::welcome_frame(
                &Welcome {
                    worker: id,
                    c: params.c,
                    w: params.w,
                    m: params.m as u64,
                    time_scale,
                    service,
                    epoch,
                },
                secret,
                &hello.nonce,
            ))?;
            // Enrolled: swap the handshake deadline for the liveness
            // deadline (or clear it entirely when liveness is off —
            // session workers park on blocking reads by design). This
            // runs **before** `split()` so the cloned reader the
            // in-pump blocks on inherits the deadline: a worker that
            // goes silent longer than `MWP_DEADLINE_MS` surfaces as a
            // timed-out read, which the pump turns into the link's
            // death flag. Idle-but-alive workers never trip it — their
            // heartbeat thread keeps frames flowing.
            stream.set_read_timeout(transport::liveness().map(|(_, deadline)| deadline))?;
            let (reader, writer) = stream.split()?;
            let link = RemoteLink::attach(reader, writer, params.c, pacing, id);
            let (side, link_pumps) = link.into_parts();
            sides[id.index()] = Some(side);
            fingerprints[id.index()] = hello.fingerprint;
            pumps.extend(link_pumps);
            filled += 1;
            Ok(())
        };
        // The failed connection is simply dropped; the next accept may
        // be the worker that actually belongs here.
        let _ = enroll_one();
    }
    let links = sides.into_iter().map(|s| s.expect("every slot filled")).collect();
    Ok((MasterEndpoint::new(OnePort::new(), links), pumps, fingerprints))
}

/// Encode a platform [`fingerprint`] as the byte string the enrollment
/// hello carries (little-endian `u64`s).
pub fn fingerprint_bytes(fingerprint: &[u64]) -> Vec<u8> {
    fingerprint.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Drive a worker endpoint through the session protocol until shutdown:
/// the public entry point for **remote worker processes** (the
/// `mwp-worker` binary), identical to the loop the in-process worker
/// threads run. Parks in `ep.recv()` between runs; each `RUN_BEGIN`
/// invokes `program` with the run parameter; returns when the master
/// sends a shutdown frame or the connection/channel closes.
pub fn serve_worker<P>(ep: WorkerEndpoint, program: &mut P)
where
    P: FnMut(u32, &WorkerEndpoint) -> RunExit,
{
    worker_loop(ep, program)
}

/// The outer loop every session worker parks in: wait (blocking, no
/// polling) for the next `RUN_BEGIN`, serve the run through `program`,
/// repeat until shutdown.
fn worker_loop<P>(ep: WorkerEndpoint, program: &mut P)
where
    P: FnMut(u32, &WorkerEndpoint) -> RunExit,
{
    loop {
        let frame = match ep.recv() {
            Ok(f) => f,
            Err(_) => return, // master endpoint dropped: implicit shutdown
        };
        match frame.tag.kind {
            FrameKind::Shutdown => return,
            FrameKind::Control if frame.tag.i == RUN_BEGIN => {
                if program(frame.tag.j, &ep) == RunExit::Terminate {
                    return;
                }
            }
            // A stray lifecycle frame while parked is harmless: an abort
            // (or end) broadcast can reach a worker whose program already
            // left the run on its own. Stay parked.
            FrameKind::Control if frame.tag.i == RUN_END || frame.tag.i == RUN_ABORT => {}
            other => unreachable!("{other:?} frame outside a run (tag {:?})", frame.tag),
        }
    }
}

/// Which backing runtime the one-shot `run_*` entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Spawn a fresh session per call and shut it down after (the
    /// historical behavior, now expressed as a one-run session).
    FreshSpawn,
    /// Route through a process-wide [`SessionPool`], reusing workers
    /// across calls with the same platform.
    PooledSession,
}

impl RuntimeMode {
    /// The names `MWP_RUNTIME` accepts, in documentation order.
    pub const NAMES: &'static [&'static str] = &["fresh", "session"];
}

/// Parse an `MWP_RUNTIME` value. Empty means "no override" (fresh spawn).
/// Unknown values are an error listing the valid names — same contract as
/// `MWP_KERNEL`, `MWP_PACK`, and `MWP_TRANSPORT`: a typo must never
/// silently fall back, or the CI matrix leg that sets this would silently
/// test the wrong runtime.
pub fn parse_runtime_mode(value: &str) -> Result<RuntimeMode, String> {
    match value {
        "" | "fresh" => Ok(RuntimeMode::FreshSpawn),
        "session" => Ok(RuntimeMode::PooledSession),
        other => Err(format!(
            "unknown runtime '{other}' (valid: {})",
            RuntimeMode::NAMES.join(", ")
        )),
    }
}

/// Reads `MWP_RUNTIME` once per process: `session` forces the pooled
/// runtime, `fresh`/empty/unset the per-call spawn. Anything else panics
/// listing the valid names (see [`parse_runtime_mode`]).
pub fn runtime_mode() -> RuntimeMode {
    static MODE: OnceLock<RuntimeMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MWP_RUNTIME") {
        Ok(v) => parse_runtime_mode(&v).unwrap_or_else(|e| panic!("MWP_RUNTIME: {e}")),
        Err(_) => RuntimeMode::FreshSpawn,
    })
}

/// Stable identity of a platform + pacing configuration, used as the
/// sharing key for pooled sessions: two calls agree on a session exactly
/// when every worker's `(c, w, m)` and the time scale are bit-equal.
pub fn fingerprint(platform: &Platform, time_scale: f64) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + 3 * platform.len());
    key.push(time_scale.to_bits());
    for w in platform.workers() {
        key.push(w.c.to_bits());
        key.push(w.w.to_bits());
        key.push(w.m as u64);
    }
    key
}

/// One pooled session plus its poison flag (set when a caller panicked
/// mid-run: the workers may be desynced — parked mid-`serve_run`, stale
/// scratch — so the entry must never serve another run). The session is
/// built lazily under the **entry** lock, never under the pool-map lock,
/// so spawning one platform's workers cannot block callers with other
/// fingerprints.
struct PoolEntry<S> {
    session: Option<S>,
    poisoned: AtomicBool,
}

/// Sets the poison flag unless disarmed with [`std::mem::forget`] — the
/// unwind path of [`SessionPool::with`].
struct PoisonOnUnwind<'a> {
    flag: &'a AtomicBool,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::Release);
    }
}

/// A process-wide cache of sessions keyed by platform [`fingerprint`].
///
/// `S` is the caller's session wrapper (e.g. the matrix runtime's
/// `RuntimeSession`); each entry is behind a [`Mutex`] because a session
/// serves one run at a time — concurrent callers with the same platform
/// serialize, which is exactly the one-master model.
///
/// Healthy entries are retained for the life of the process (only
/// poisoned ones are evicted): each distinct fingerprint keeps its parked
/// worker threads and warm buffer pools alive. That is the point for
/// repeated runs on a few platforms; a sweep over **many distinct**
/// platforms should hold its sessions directly (scoping their lifetime)
/// instead of going through the pooled mode.
pub struct SessionPool<S> {
    map: OnceLock<Mutex<PoolMap<S>>>,
}

/// Fingerprint → shared pool entry. The entry is `Arc`ed out of the map
/// so the (expensive) session build happens outside the map lock.
type PoolMap<S> = HashMap<Vec<u64>, Arc<Mutex<PoolEntry<S>>>>;

impl<S> SessionPool<S> {
    /// An empty pool (usable in a `static`).
    pub const fn new() -> Self {
        SessionPool { map: OnceLock::new() }
    }

    fn map(&self) -> &Mutex<PoolMap<S>> {
        self.map.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// The shared entry for `key`. Holds the map lock only for the map
    /// operation itself — the (expensive, thread-spawning) session build
    /// happens later under the entry's own lock.
    fn checkout(&self, key: Vec<u64>) -> Arc<Mutex<PoolEntry<S>>> {
        let mut entries = self.map().lock();
        entries
            .entry(key)
            .or_insert_with(|| {
                Arc::new(Mutex::new(PoolEntry { session: None, poisoned: AtomicBool::new(false) }))
            })
            .clone()
    }

    /// Drop `stale` from the map (if it is still the entry for `key`), so
    /// the next checkout rebuilds. The abandoned session shuts down when
    /// the last `Arc` holder lets go.
    fn evict(&self, key: &[u64], stale: &Arc<Mutex<PoolEntry<S>>>) {
        let mut entries = self.map().lock();
        if entries.get(key).is_some_and(|current| Arc::ptr_eq(current, stale)) {
            entries.remove(key);
        }
    }

    /// Run `f` on the pooled session for `platform` + `time_scale`,
    /// building one with `build` on first use.
    ///
    /// Panic safety: if `f` unwinds mid-run, the entry is **poisoned** —
    /// its workers may be desynced (parked mid-run with stale state), so
    /// it is evicted and every later or concurrently-waiting caller
    /// rebuilds a fresh session instead of corrupting the next run. One
    /// failing caller therefore costs one session respawn, nothing more.
    pub fn with<R>(
        &self,
        platform: &Platform,
        time_scale: f64,
        build: impl Fn() -> S,
        f: impl FnOnce(&S) -> R,
    ) -> R {
        self.with_checked(platform, time_scale, build, |_| true, f)
    }

    /// [`SessionPool::with`] plus a health check on cached entries: a
    /// pre-existing session that fails `healthy` — typically because a
    /// remote worker died (transport error, missed heartbeat deadline)
    /// since its last run — is evicted and rebuilt exactly like a
    /// poisoned one, so transport death is handled by the same
    /// machinery as a caller panic. A freshly built session is served
    /// without being checked.
    pub fn with_checked<R>(
        &self,
        platform: &Platform,
        time_scale: f64,
        build: impl Fn() -> S,
        healthy: impl Fn(&S) -> bool,
        f: impl FnOnce(&S) -> R,
    ) -> R {
        let key = fingerprint(platform, time_scale);
        let mut f = Some(f);
        loop {
            let shared = self.checkout(key.clone());
            let mut guard = shared.lock();
            if guard.poisoned.load(Ordering::Acquire) {
                // A previous caller panicked mid-run on this session:
                // evict and retry with a fresh one.
                drop(guard);
                self.evict(&key, &shared);
                continue;
            }
            match guard.session.as_ref() {
                Some(session) if !healthy(session) => {
                    // A dead remote worker makes the cached session as
                    // unusable as a poisoned one: evict and rebuild.
                    drop(guard);
                    self.evict(&key, &shared);
                    continue;
                }
                Some(_) => {}
                // First use (or a retry after build itself panicked,
                // which leaves the entry empty and unpoisoned).
                None => guard.session = Some(build()),
            }
            let PoolEntry { session, poisoned } = &mut *guard;
            let sentinel = PoisonOnUnwind { flag: poisoned };
            let out =
                (f.take().expect("loop only reaches f once"))(session.as_ref().expect("just built"));
            std::mem::forget(sentinel);
            return out;
        }
    }
}

impl<S> Default for SessionPool<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared entry-point shape of the one-shot `run_*` wrappers: spawn a
/// throwaway session per call under [`RuntimeMode::FreshSpawn`] (with an
/// explicit `shutdown` so worker panics propagate), or serve the run from
/// `pool` under [`RuntimeMode::PooledSession`]. `healthy` gates pooled
/// reuse: a cached session failing it — a remote worker died since its
/// last run — is evicted and rebuilt (see [`SessionPool::with_checked`]).
pub fn run_with_mode<S, R>(
    pool: &SessionPool<S>,
    platform: &Platform,
    time_scale: f64,
    build: impl Fn() -> S,
    healthy: impl Fn(&S) -> bool,
    shutdown: impl FnOnce(S),
    f: impl FnOnce(&S) -> R,
) -> R {
    match runtime_mode() {
        RuntimeMode::FreshSpawn => {
            let session = build();
            let out = f(&session);
            shutdown(session);
            out
        }
        RuntimeMode::PooledSession => pool.with_checked(platform, time_scale, build, healthy, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Tag;
    use bytes::Bytes;

    /// An echo program: bounce every in-run frame back tagged with the
    /// run parameter, so tests can see which run served them.
    fn echo_program(param: u32, ep: &WorkerEndpoint) -> RunExit {
        loop {
            let frame = match ep.recv() {
                Ok(f) => f,
                Err(_) => return RunExit::Terminate,
            };
            match frame.tag.kind {
                FrameKind::Shutdown => return RunExit::Terminate,
                FrameKind::Control if frame.tag.i == RUN_END || frame.tag.i == RUN_ABORT => {
                    return RunExit::Completed
                }
                _ => ep.send(Frame::new(
                    Tag::new(FrameKind::CResult, frame.tag.i as usize, param as usize),
                    frame.payload,
                )),
            }
        }
    }

    fn echo_session(p: usize) -> Session {
        let platform = Platform::homogeneous(p, 1.0, 1.0, 8).unwrap();
        Session::spawn(&platform, 0.0, |_, _| echo_program)
    }

    #[test]
    fn one_session_serves_many_runs() {
        let session = echo_session(2);
        for run in 0..5u32 {
            let epoch = session.begin_run(2, run);
            for w in 0..2 {
                session.master().send(
                    WorkerId(w),
                    Frame::new(Tag::new(FrameKind::BlockA, w, 0), Bytes::from_static(b"x")),
                    1,
                );
            }
            for w in 0..2 {
                let (frame, _) = session.master().recv(WorkerId(w), 1).unwrap();
                assert_eq!(frame.tag.kind, FrameKind::CResult);
                assert_eq!(frame.tag.i as usize, w, "echo routed per link");
                assert_eq!(frame.tag.j, run, "program saw this run's parameter");
            }
            // Each run moved exactly its own 4 blocks, although the
            // session's raw counters keep growing.
            assert_eq!(session.finish_run(2, epoch), 4);
        }
        assert_eq!(session.master().total_blocks(), 20);
        assert_eq!(session.shutdown(), 2);
    }

    #[test]
    fn aborted_run_leaves_the_session_serving_and_rejects_leftovers() {
        let session = echo_session(1);

        // Run 1: send a block but abort without receiving the echo — the
        // reply is left in flight, stamped with generation 1.
        let epoch = session.begin_run(1, 1);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockA, 0, 0), Bytes::from_static(b"x")),
            1,
        );
        session.abort_run(1, epoch);

        // Run 2 on the same session: the leftover generation-1 reply must
        // never surface; the run's own traffic flows normally.
        let epoch = session.begin_run(1, 2);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockA, 5, 0), Bytes::from_static(b"y")),
            1,
        );
        let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(frame.tag.i, 5, "run 2 must see its own echo, not run 1's leftover");
        assert_eq!(frame.tag.j, 2);
        session.finish_run(1, epoch);
        assert!(
            session.stale_rejections() >= 1,
            "the aborted run's in-flight reply must be rejected by generation"
        );
        assert_eq!(session.shutdown(), 1);
    }

    #[test]
    fn partial_enrollment_leaves_other_workers_parked() {
        let session = echo_session(3);
        let epoch = session.begin_run(1, 7);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockB, 9, 9), Bytes::new()),
            1,
        );
        let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(frame.tag.j, 7);
        assert_eq!(session.finish_run(1, epoch), 2);
        // Workers 1 and 2 never saw a frame; shutdown still joins all 3.
        assert_eq!(session.shutdown(), 3);
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let session = echo_session(4);
        let epoch = session.begin_run(4, 0);
        session.finish_run(4, epoch);
        drop(session); // would hang (test timeout) if workers leaked
    }

    #[test]
    fn pool_shares_by_fingerprint() {
        let pool: SessionPool<u32> = SessionPool::new();
        let pf_a = Platform::homogeneous(2, 1.0, 1.0, 8).unwrap();
        let pf_b = Platform::homogeneous(3, 1.0, 1.0, 8).unwrap();
        let builds = std::cell::Cell::new(0u32);
        let build = || {
            builds.set(builds.get() + 1);
            builds.get()
        };
        assert_eq!(pool.with(&pf_a, 0.0, build, |s| *s), 1);
        assert_eq!(pool.with(&pf_a, 0.0, build, |s| *s), 1, "same platform reuses the session");
        assert_eq!(pool.with(&pf_b, 0.0, build, |s| *s), 2, "different platform rebuilds");
        assert_eq!(pool.with(&pf_a, 0.5, build, |s| *s), 3, "pacing is part of the identity");
    }

    #[test]
    fn pool_evicts_poisoned_sessions_after_a_panic() {
        let pool: SessionPool<u32> = SessionPool::new();
        let pf = Platform::homogeneous(2, 1.0, 1.0, 8).unwrap();
        let builds = std::cell::Cell::new(0u32);
        let build = || {
            builds.set(builds.get() + 1);
            builds.get()
        };
        assert_eq!(pool.with(&pf, 0.0, build, |s| *s), 1);
        // A caller panicking mid-run poisons the entry…
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.with(&pf, 0.0, build, |_: &u32| panic!("run blew up"))
        }));
        assert!(panicked.is_err());
        // …so the next caller gets a freshly built session, not the
        // desynced one.
        assert_eq!(pool.with(&pf, 0.0, build, |s| *s), 2);
        assert_eq!(pool.with(&pf, 0.0, build, |s| *s), 2, "the rebuilt entry is reused");
    }

    #[test]
    fn pool_evicts_sessions_failing_the_health_check() {
        // The transport-death analogue of
        // `pool_evicts_poisoned_sessions_after_a_panic`: an entry whose
        // session reports unhealthy (a remote worker died) must be
        // evicted and rebuilt, not handed out again.
        let pool: SessionPool<u32> = SessionPool::new();
        let pf = Platform::homogeneous(2, 1.0, 1.0, 8).unwrap();
        let builds = std::cell::Cell::new(0u32);
        let build = || {
            builds.set(builds.get() + 1);
            builds.get()
        };
        let healthy = |s: &u32| *s != 1; // session 1 "lost a worker"
        assert_eq!(pool.with_checked(&pf, 0.0, build, healthy, |s| *s), 1);
        // The next caller sees the unhealthy cached entry, evicts it,
        // and is served a freshly built session…
        assert_eq!(pool.with_checked(&pf, 0.0, build, healthy, |s| *s), 2);
        // …which, being healthy, is then reused.
        assert_eq!(pool.with_checked(&pf, 0.0, build, healthy, |s| *s), 2);
    }

    #[test]
    fn admit_grows_a_remote_session_between_runs() {
        // Start a remote star with one worker, serve a run, then enroll
        // a second worker on the still-open listener and serve a run on
        // both: the fleet grew without tearing the session down.
        let platform = Platform::homogeneous(1, 1.0, 1.0, 8).unwrap();
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let dial = |claim: Option<WorkerId>| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let stream = transport::connect_with_retry(
                    &endpoint,
                    std::time::Duration::from_secs(10),
                )
                .unwrap();
                let (ep, _welcome) = transport::enroll(stream, claim, b"elastic").unwrap();
                serve_worker(ep, &mut echo_program);
            })
        };
        let w0 = dial(None);
        let mut session =
            Session::accept_remote(&platform, 0.0, &listener, SERVICE_INPROC).unwrap();
        assert_eq!(session.workers(), 1);
        assert_eq!(session.epoch(), 1, "a fresh fleet is generation 1");
        let epoch = session.begin_run(1, 1);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockA, 0, 0), Bytes::from_static(b"x")),
            1,
        );
        assert!(session.master().recv(WorkerId(0), 1).is_ok());
        session.finish_run(1, epoch);
        // Between runs: a new worker dials in and is admitted.
        let w1 = dial(None);
        let id = session
            .admit(&listener, WorkerParams { c: 1.0, w: 1.0, m: 8 }, SERVICE_INPROC)
            .unwrap();
        assert_eq!(id, WorkerId(1));
        assert_eq!(session.workers(), 2);
        assert_eq!(session.epoch(), 2, "admission is a membership change");
        assert_eq!(session.worker_fingerprints()[1], b"elastic".to_vec());
        let epoch = session.begin_run(2, 2);
        for w in 0..2 {
            session.master().send(
                WorkerId(w),
                Frame::new(Tag::new(FrameKind::BlockA, w, 0), Bytes::from_static(b"y")),
                1,
            );
        }
        for w in 0..2 {
            let (frame, _) = session.master().recv(WorkerId(w), 1).unwrap();
            assert_eq!(frame.tag.j, 2, "the admitted worker serves runs like any other");
        }
        session.finish_run(2, epoch);
        drop(session);
        w0.join().unwrap();
        w1.join().unwrap();
    }

    #[test]
    fn prune_dead_compacts_the_fleet() {
        // Two remote workers; one is declared dead between runs. Prune
        // drops its link and the survivor (shifted down to slot 0 if it
        // was above) keeps serving runs.
        let platform = Platform::homogeneous(2, 1.0, 1.0, 8).unwrap();
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let endpoint = endpoint.clone();
                thread::spawn(move || {
                    let stream = transport::connect_with_retry(
                        &endpoint,
                        std::time::Duration::from_secs(10),
                    )
                    .unwrap();
                    let (ep, _welcome) = transport::enroll(stream, None, b"fleet").unwrap();
                    serve_worker(ep, &mut echo_program);
                })
            })
            .collect();
        let mut session =
            Session::accept_remote(&platform, 0.0, &listener, SERVICE_INPROC).unwrap();
        assert_eq!(session.dead_workers(), 0);
        assert_eq!(session.prune_dead(), Vec::<usize>::new());
        assert_eq!(session.epoch(), 1, "an empty prune is not a membership change");
        session.master().mark_dead(WorkerId(0));
        assert_eq!(session.dead_workers(), 1);
        assert_eq!(session.prune_dead(), vec![0]);
        assert_eq!(session.workers(), 1);
        assert_eq!(session.dead_workers(), 0);
        assert_eq!(session.epoch(), 2, "pruning advances the membership epoch");
        // The survivor still serves a run at its new slot 0.
        let epoch = session.begin_run(1, 3);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockB, 0, 0), Bytes::from_static(b"z")),
            1,
        );
        let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(frame.tag.j, 3);
        session.finish_run(1, epoch);
        drop(session);
        // Both worker threads exit orderly: the survivor on the
        // teardown shutdown frame, the pruned one on the shutdown its
        // dying out-pump synthesized.
        for w in workers {
            w.join().unwrap();
        }
    }

    /// A worker clinging to a previous fleet generation's epoch is
    /// turned away at the door, and the same listener keeps admitting
    /// fresh (epoch-0) members afterwards — one stale dialer must not
    /// wedge elastic enrollment.
    #[test]
    fn stale_epoch_redial_is_rejected_but_the_door_stays_open() {
        let platform = Platform::homogeneous(1, 1.0, 1.0, 8).unwrap();
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let dial = |epoch: u64| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let stream = transport::connect_with_retry(
                    &endpoint,
                    std::time::Duration::from_secs(10),
                )
                .unwrap();
                // The session under test reads its secret from the
                // environment; read the same one so a CI leg exporting
                // MWP_FLEET_SECRET exercises this gate authenticated.
                let secret = auth::fleet_secret();
                match transport::enroll_with(stream, None, b"fleet", &secret, epoch, None) {
                    Ok((ep, welcome)) => {
                        serve_worker(ep, &mut echo_program);
                        Ok(welcome.epoch)
                    }
                    Err(e) => Err(e.kind()),
                }
            })
        };
        let w0 = dial(0);
        let mut session =
            Session::accept_remote(&platform, 0.0, &listener, SERVICE_INPROC).unwrap();
        // Grow the fleet once so the current epoch moves past 1.
        let w1 = dial(0);
        session.admit(&listener, WorkerParams { c: 1.0, w: 1.0, m: 8 }, SERVICE_INPROC).unwrap();
        assert_eq!(session.epoch(), 2);
        // A replay from generation 1 is rejected by the admission gate…
        let stale = dial(1);
        let err = session
            .admit(&listener, WorkerParams { c: 1.0, w: 1.0, m: 8 }, SERVICE_INPROC)
            .expect_err("stale-epoch dialer must not be admitted");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(stale.join().unwrap(), Err(io::ErrorKind::PermissionDenied));
        assert_eq!(session.workers(), 2, "the stale dialer got no slot");
        assert_eq!(session.epoch(), 2, "a rejected dialer is not a membership change");
        // …while a fresh worker enrolls right after, at generation 3.
        let w2 = dial(0);
        let id = session
            .admit(&listener, WorkerParams { c: 1.0, w: 1.0, m: 8 }, SERVICE_INPROC)
            .unwrap();
        assert_eq!(id, WorkerId(2));
        assert_eq!(session.epoch(), 3);
        drop(session);
        assert_eq!(w0.join().unwrap(), Ok(1));
        assert_eq!(w1.join().unwrap(), Ok(2));
        assert_eq!(w2.join().unwrap(), Ok(3), "the newcomer's welcome carries the new epoch");
    }

    #[test]
    fn run_generation_skips_zero_on_wrap() {
        // A session whose counter sits just below u32::MAX must never
        // stamp the reserved "no run" generation 0: the wrapped run
        // would have every data frame structurally rejected.
        let session = echo_session(1);
        session.force_run_gen(u32::MAX - 1);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let epoch = session.begin_run(1, 0);
            session.master().send(
                WorkerId(0),
                Frame::new(Tag::new(FrameKind::BlockA, 0, 0), Bytes::from_static(b"x")),
                1,
            );
            let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
            assert_ne!(frame.run, 0, "generation 0 must be skipped on wrap");
            seen.push(frame.run);
            session.finish_run(1, epoch);
        }
        assert_eq!(seen, vec![u32::MAX, 1, 2]);
        assert_eq!(session.stale_rejections(), 0, "no frame was lost to the wrap");
        assert_eq!(session.shutdown(), 1);
    }

    /// A run-generation-aware echo: replies are stamped with the
    /// generation of the frame they answer (not the latest adopted one),
    /// and the program returns to park only when every generation it saw
    /// open has ended — the multi-run shape job-serving worker programs
    /// must have.
    fn job_echo_program(_param: u32, ep: &WorkerEndpoint) -> RunExit {
        let mut open = vec![ep.current_run()];
        loop {
            let frame = match ep.recv() {
                Ok(f) => f,
                Err(_) => return RunExit::Terminate,
            };
            match frame.tag.kind {
                FrameKind::Shutdown => return RunExit::Terminate,
                FrameKind::Control if frame.tag.i == RUN_BEGIN => open.push(frame.run),
                FrameKind::Control if frame.tag.i == RUN_END || frame.tag.i == RUN_ABORT => {
                    open.retain(|&g| g != frame.run);
                    if open.is_empty() {
                        return RunExit::Completed;
                    }
                }
                _ => ep.send_in(
                    frame.run,
                    Frame::new(
                        Tag::new(FrameKind::CResult, frame.tag.i as usize, 0),
                        frame.payload,
                    ),
                ),
            }
        }
    }

    #[test]
    fn concurrent_job_runs_interleave_on_one_session() {
        let platform = Platform::homogeneous(1, 1.0, 1.0, 8).unwrap();
        let session = Session::spawn(&platform, 0.0, |_, _| job_echo_program);

        // Two jobs in flight at once on the same worker link.
        let job_a = session.begin_job(1, 7);
        let job_b = session.begin_job(1, 8);
        let (ga, gb) = (job_a.generation(), job_b.generation());
        assert_ne!(ga, gb);

        // Interleave the jobs' frames on the wire, pre-stamped with
        // their generations.
        for (run, i) in [(ga, 1usize), (gb, 2), (ga, 3), (gb, 4)] {
            let mut f = Frame::new(Tag::new(FrameKind::BlockA, i, 0), Bytes::from_static(b"x"));
            f.run = run;
            session.master().send(WorkerId(0), f, 1);
        }

        // Collect job B first: its collector must stash job A's replies
        // for job A instead of dropping them.
        let t = Some(std::time::Duration::from_secs(10));
        let mut b_seen = Vec::new();
        for _ in 0..2 {
            let (f, _) = session.master().recv_run_timeout(WorkerId(0), gb, 1, t).unwrap();
            assert_eq!(f.run, gb);
            b_seen.push(f.tag.i);
        }
        assert_eq!(b_seen, vec![2, 4]);
        let mut a_seen = Vec::new();
        for _ in 0..2 {
            let (f, _) = session.master().recv_run_timeout(WorkerId(0), ga, 1, t).unwrap();
            assert_eq!(f.run, ga);
            a_seen.push(f.tag.i);
        }
        assert_eq!(a_seen, vec![1, 3]);

        session.finish_job(1, job_a);
        session.finish_job(1, job_b);
        assert_eq!(session.stale_rejections(), 0, "no interleaved frame was dropped");

        // The session still serves a legacy exclusive run afterwards.
        let epoch = session.begin_run(1, 9);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockA, 5, 0), Bytes::from_static(b"y")),
            1,
        );
        let (f, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(f.tag.i, 5);
        session.finish_run(1, epoch);
        assert_eq!(session.shutdown(), 1);
    }

    #[test]
    fn aborted_job_leaves_other_jobs_running() {
        let platform = Platform::homogeneous(1, 1.0, 1.0, 8).unwrap();
        let session = Session::spawn(&platform, 0.0, |_, _| job_echo_program);

        let job_a = session.begin_job(1, 1);
        let job_b = session.begin_job(1, 2);
        let (ga, gb) = (job_a.generation(), job_b.generation());

        // Job A sends a frame whose echo is never collected, then aborts.
        let mut f = Frame::new(Tag::new(FrameKind::BlockA, 1, 0), Bytes::from_static(b"x"));
        f.run = ga;
        session.master().send(WorkerId(0), f, 1);
        session.abort_job(1, job_a);

        // Job B is untouched: its exchange completes bit-for-bit.
        let mut f = Frame::new(Tag::new(FrameKind::BlockA, 2, 0), Bytes::from_static(b"y"));
        f.run = gb;
        session.master().send(WorkerId(0), f, 1);
        let t = Some(std::time::Duration::from_secs(10));
        let (echo, _) = session.master().recv_run_timeout(WorkerId(0), gb, 1, t).unwrap();
        assert_eq!(echo.tag.i, 2);
        session.finish_job(1, job_b);

        // Job A's orphaned echo was either retired from the demux queue
        // or rejected at admission — counted either way.
        assert!(session.stale_rejections() >= 1);
        assert_eq!(session.shutdown(), 1);
    }

    #[test]
    fn runtime_mode_parser_is_strict() {
        assert_eq!(parse_runtime_mode(""), Ok(RuntimeMode::FreshSpawn));
        assert_eq!(parse_runtime_mode("fresh"), Ok(RuntimeMode::FreshSpawn));
        assert_eq!(parse_runtime_mode("session"), Ok(RuntimeMode::PooledSession));
        let err = parse_runtime_mode("sesion").unwrap_err();
        for name in RuntimeMode::NAMES {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    /// The loopback-socket star must serve the exact same session
    /// protocol as the channel star: several runs, per-run traffic
    /// accounting, partial enrollment, orderly shutdown joining every
    /// worker thread and pump.
    fn echo_session_over(mode: TransportMode, p: usize) -> Session {
        let platform = Platform::homogeneous(p, 1.0, 1.0, 8).unwrap();
        Session::spawn_with_transport(&platform, 0.0, mode, |_, _| echo_program)
    }

    #[test]
    fn loopback_tcp_session_serves_consecutive_runs() {
        let session = echo_session_over(TransportMode::Tcp, 2);
        // Every worker enrolled with the platform fingerprint.
        for fp in session.worker_fingerprints() {
            assert!(!fp.is_empty(), "loopback workers enroll with a fingerprint");
        }
        for run in 0..3u32 {
            let epoch = session.begin_run(2, run);
            for w in 0..2 {
                session.master().send(
                    WorkerId(w),
                    Frame::new(Tag::new(FrameKind::BlockA, w, 0), Bytes::from_static(b"x")),
                    1,
                );
            }
            for w in 0..2 {
                let (frame, _) = session.master().recv(WorkerId(w), 1).unwrap();
                assert_eq!(frame.tag.i as usize, w, "frames routed per socket link");
                assert_eq!(frame.tag.j, run, "program saw this run's parameter");
            }
            assert_eq!(session.finish_run(2, epoch), 4);
        }
        assert_eq!(session.shutdown(), 2);
    }

    #[cfg(unix)]
    #[test]
    fn loopback_uds_session_serves_runs() {
        let session = echo_session_over(TransportMode::Uds, 3);
        let epoch = session.begin_run(1, 9);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockB, 4, 4), Bytes::from_static(b"y")),
            1,
        );
        let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(frame.tag.j, 9);
        assert_eq!(session.finish_run(1, epoch), 2);
        // Workers 1 and 2 stayed parked on their sockets; shutdown still
        // joins all three threads (and all six pumps, silently).
        assert_eq!(session.shutdown(), 3);
    }

    #[test]
    fn loopback_session_drop_without_shutdown_joins_cleanly() {
        let session = echo_session_over(TransportMode::Tcp, 2);
        let epoch = session.begin_run(2, 0);
        session.finish_run(2, epoch);
        drop(session); // would hang (test timeout) if a pump leaked
    }

    #[test]
    fn accept_remote_survives_garbage_and_oversized_connections() {
        use std::io::Write as _;
        // A master accepting remote workers on a reachable listener must
        // shrug off stray connections: a port-scan-style immediate
        // close, a garbage byte salvo, an adversarial 1 GiB length
        // prefix, and a held-open silent connection (which must be cut
        // by the handshake deadline, not park enrollment forever) —
        // then still enroll the real worker that arrives last.
        std::env::set_var("MWP_HANDSHAKE_TIMEOUT_MS", "200");
        let platform = Platform::homogeneous(1, 1.0, 1.0, 8).unwrap();
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let addr = endpoint.strip_prefix("tcp://").unwrap().to_string();
        let noise = thread::spawn(move || {
            // 1: connect and immediately close (health-check probe).
            drop(std::net::TcpStream::connect(&addr).unwrap());
            // 2: garbage bytes instead of a hello.
            let mut s = std::net::TcpStream::connect(&addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            drop(s);
            // 3: oversized length prefix — must be rejected on the
            // handshake budget, not allocated.
            let mut s = std::net::TcpStream::connect(&addr).unwrap();
            s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
            drop(s);
            // 4: connect, send nothing, and hold the socket open past
            // the handshake deadline (the head-of-line blocking case).
            let s = std::net::TcpStream::connect(&addr).unwrap();
            thread::sleep(std::time::Duration::from_millis(600));
            drop(s);
        });
        let worker = {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                // Arrive after the noise (best-effort ordering; any
                // interleaving must still enroll exactly one worker).
                thread::sleep(std::time::Duration::from_millis(30));
                let stream = transport::connect(&endpoint).unwrap();
                let (ep, welcome) = transport::enroll(stream, None, b"real-worker").unwrap();
                assert_eq!(welcome.worker, WorkerId(0));
                serve_worker(ep, &mut echo_program);
            })
        };
        let session = Session::accept_remote(&platform, 0.0, &listener, 42).unwrap();
        assert_eq!(session.worker_fingerprints()[0], b"real-worker".to_vec());
        let epoch = session.begin_run(1, 5);
        session.master().send(
            WorkerId(0),
            Frame::new(Tag::new(FrameKind::BlockA, 0, 0), Bytes::from_static(b"z")),
            1,
        );
        let (frame, _) = session.master().recv(WorkerId(0), 1).unwrap();
        assert_eq!(frame.tag.j, 5);
        assert_eq!(session.finish_run(1, epoch), 2);
        drop(session); // delivers shutdown: the worker thread exits
        noise.join().unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn fingerprints_distinguish_worker_params() {
        let a = Platform::homogeneous(2, 1.0, 1.0, 8).unwrap();
        let b = Platform::homogeneous(2, 1.0, 1.0, 9).unwrap();
        assert_ne!(fingerprint(&a, 0.0), fingerprint(&b, 0.0));
        assert_eq!(fingerprint(&a, 0.0), fingerprint(&a.clone(), 0.0));
    }
}

//! Socket transport: master and workers as separate processes (or hosts).
//!
//! The channel-backed star ([`crate::net::StarNetwork`]) moves [`Frame`]s
//! through in-process channels. This module grows the message stack a
//! second backend with the **same master-side semantics**: frames travel
//! length-prefixed over a TCP or Unix-domain socket, while the one-port
//! arbiter, link pacing, and per-link statistics all stay on the master
//! side of the wire, exactly where the paper's model puts them.
//!
//! The pieces, bottom to top:
//!
//! * **Framing** — [`write_frame_to`] / [`read_frame_from`]: a `u32`
//!   little-endian length prefix followed by the [`Frame::encode`] image
//!   (13-byte header + payload) and — unless `MWP_CHECKSUM=off` — a
//!   CRC32C trailer over the encoded image (see [`checksum_enabled`]),
//!   verified on receive so a flipped bit anywhere in header or payload
//!   surfaces as stream corruption instead of silently wrong
//!   coefficients. Receives land in recycled
//!   [`BufferPool`] buffers and are decoded zero-copy with
//!   [`Frame::decode_bytes`]; adversarial input (truncated streams,
//!   oversized or undersized length prefixes, unknown frame tags,
//!   mismatched checksums) is rejected with an [`std::io::Error`],
//!   never a panic.
//! * **[`FrameRead`] / [`FrameWrite`] / [`FrameStream`]** — the framed
//!   byte-stream abstraction. [`TcpTransport`] and [`UdsTransport`]
//!   implement it; a stream splits into independently-owned read and
//!   write halves so a link can pump both directions concurrently.
//! * **[`TransportListener`] / [`connect`]** — endpoint management with
//!   `tcp://host:port` and `uds:/path` address strings; `MWP_BIND` (see
//!   [`TransportListener::bind_env`]) moves the master off loopback for
//!   real multi-host fleets.
//! * **Handshake** — an authenticated three-frame exchange (protocol
//!   version [`PROTOCOL_VERSION`]): the master opens with a
//!   [challenge](challenge_frame) nonce, the worker answers with a
//!   [`Hello`] (claimed slot, fleet epoch, its own nonce, fingerprint
//!   bytes) carrying an HMAC over the challenge and every asserted field
//!   keyed by the shared fleet secret ([`crate::auth::fleet_secret`]),
//!   and the master closes with a [`Welcome`] (assigned [`WorkerId`],
//!   the worker's `(c, w, m)` parameters, the pacing scale, the
//!   [service id](SERVICE_MATRIX), and the membership epoch) MAC'd over
//!   the worker's nonce — mutual authentication, replay-proof in both
//!   directions. A peer that fails any check gets a [`REJECT`] frame
//!   naming the reason and is dropped; a pre-v2 or future-version peer
//!   degrades to that clean rejection instead of a decode panic. All
//!   frames ride the frame format itself, as `Control` frames with
//!   reserved sentinels.
//! * **[`RemoteLink`]** — the master-facing half of a socket link: a
//!   channel-backed [`MasterSide`] (so [`crate::MasterEndpoint`] is
//!   byte-for-byte the code the channel transport uses) bridged to the
//!   socket by two pump threads. The pumps meter nothing — pacing and
//!   stats happen in the `MasterSide` they feed, so a socket link and a
//!   channel link are indistinguishable to the runtime above.
//! * **[`enroll`]** — the worker-process side: connect, say hello, await
//!   the welcome, and get back a socket-backed [`WorkerEndpoint`] that
//!   the existing worker programs (`mwp-core`'s Algorithm 2 loop, the LU
//!   op server) drive unchanged.
//!
//! Which backend a [`crate::Session`] wires is selected by
//! `MWP_TRANSPORT=channel|tcp|uds` (see [`transport_mode`]) or explicitly
//! via `Session::spawn_with_transport`; out-of-process workers attach via
//! `Session::accept_remote` + the `mwp-worker` binary.

use crate::auth;
use crate::checksum::{crc32c, Crc32c};
use crate::endpoint::WorkerEndpoint;
use crate::frame::{Frame, FrameKind, Tag};
use crate::link::{Link, MasterSide, Pacing};
use crate::pool::BufferPool;
use bytes::Bytes;
use mwp_platform::WorkerId;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::thread::{self, JoinHandle};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Transport selection
// ---------------------------------------------------------------------------

/// Which byte transport carries a session's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// In-process channels (the default): no serialization at all.
    Channel,
    /// Loopback/remote TCP sockets, length-prefixed frames.
    Tcp,
    /// Unix-domain sockets, same framing as TCP.
    Uds,
}

impl TransportMode {
    /// The names `MWP_TRANSPORT` accepts, in documentation order.
    pub const NAMES: &'static [&'static str] = &["channel", "tcp", "uds"];
}

/// Parse an `MWP_TRANSPORT` value. Empty means "no override" (channel).
/// Unknown values are an error listing the valid names — the same
/// contract as `MWP_KERNEL`, `MWP_PACK`, and `MWP_RUNTIME`: a typo must
/// never silently fall back, or a CI matrix leg that sets the variable
/// would silently test the wrong backend.
pub fn parse_transport_mode(value: &str) -> Result<TransportMode, String> {
    match value {
        "" | "channel" => Ok(TransportMode::Channel),
        "tcp" => Ok(TransportMode::Tcp),
        "uds" => Ok(TransportMode::Uds),
        other => Err(format!(
            "unknown transport '{other}' (valid: {})",
            TransportMode::NAMES.join(", ")
        )),
    }
}

/// The process-wide transport mode: `MWP_TRANSPORT` override if set, else
/// [`TransportMode::Channel`]. Resolved once per process, like the kernel
/// dispatcher's `MWP_KERNEL`.
pub fn transport_mode() -> TransportMode {
    static MODE: OnceLock<TransportMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MWP_TRANSPORT") {
        Ok(v) => parse_transport_mode(&v).unwrap_or_else(|e| panic!("MWP_TRANSPORT: {e}")),
        Err(_) => TransportMode::Channel,
    })
}

// ---------------------------------------------------------------------------
// Liveness configuration
// ---------------------------------------------------------------------------

/// Default heartbeat period on idle socket links (`MWP_HEARTBEAT_MS`).
pub const DEFAULT_HEARTBEAT_MS: u64 = 1000;
/// Default silence budget before a socket peer is declared dead
/// (`MWP_DEADLINE_MS`). Must exceed the heartbeat period — a healthy
/// peer proves liveness several times per deadline window.
pub const DEFAULT_DEADLINE_MS: u64 = 10_000;

/// Parse a `MWP_*_MS` millisecond value: empty means "no override"
/// (`None`), anything else must be a whole number of milliseconds.
/// Strict, like `MWP_KERNEL`/`MWP_TRANSPORT`: garbage is an error, never
/// a silent fallback.
pub fn parse_millis(value: &str) -> Result<Option<u64>, String> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    v.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("'{value}' is not a whole number of milliseconds"))
}

/// The liveness layer's configuration: `Some((heartbeat, deadline))`
/// when enabled, `None` when either `MWP_HEARTBEAT_MS=0` or
/// `MWP_DEADLINE_MS=0` switched it off.
///
/// When enabled, socket links carry [`Frame::heartbeat`] probes whenever
/// a direction is idle for a heartbeat period, every socket read runs
/// under the deadline, and the failure-aware schedulers treat a worker
/// silent past the deadline as dead. The environment is re-read on each
/// call (like [`handshake_timeout`], and unlike the once-per-process
/// mode switches) so tests can stage different detection bounds within
/// one process.
pub fn liveness() -> Option<(Duration, Duration)> {
    let get = |name: &str, default: u64| match std::env::var(name) {
        Ok(v) => parse_millis(&v)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .unwrap_or(default),
        Err(_) => default,
    };
    let heartbeat = get("MWP_HEARTBEAT_MS", DEFAULT_HEARTBEAT_MS);
    let deadline = get("MWP_DEADLINE_MS", DEFAULT_DEADLINE_MS);
    if heartbeat == 0 || deadline == 0 {
        return None;
    }
    assert!(
        deadline > heartbeat,
        "MWP_DEADLINE_MS ({deadline}) must exceed MWP_HEARTBEAT_MS ({heartbeat}): \
         a peer must get several heartbeats per deadline window or healthy \
         links would be declared dead"
    );
    Some((Duration::from_millis(heartbeat), Duration::from_millis(deadline)))
}

/// The whole-run wall-clock budget (`MWP_RUN_DEADLINE_MS`): `Some` when
/// the variable is set to a nonzero number of milliseconds, `None` when
/// unset or `0` (no budget — runs may take as long as they take). When a
/// run's master loop observes the budget exhausted it broadcasts
/// [`crate::lifecycle::RUN_ABORT`] and returns an abort error instead of
/// a result; the session itself stays serviceable. Re-read per call
/// (like [`liveness`]) so tests can stage a deadline for one run and
/// clear it for the next within a single process.
pub fn run_deadline() -> Option<Duration> {
    match std::env::var("MWP_RUN_DEADLINE_MS") {
        Ok(v) => parse_millis(&v)
            .unwrap_or_else(|e| panic!("MWP_RUN_DEADLINE_MS: {e}"))
            .filter(|&ms| ms != 0)
            .map(Duration::from_millis),
        Err(_) => None,
    }
}

/// Parse an `MWP_CHECKSUM` value: empty means "no override" (checksums
/// **on**, the default), `on`/`off` are explicit. Strict like every
/// other `MWP_*` switch — a typo'd value must never silently run
/// without integrity checking.
pub fn parse_checksum(value: &str) -> Result<bool, String> {
    match value.trim() {
        "" | "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("unknown checksum setting '{other}' (valid: on, off)")),
    }
}

/// Whether socket frames carry (and verify) the CRC32C integrity
/// trailer: `MWP_CHECKSUM=on|off`, default on. The flag changes the wire
/// format — the length prefix covers a 4-byte trailer after the payload
/// — so **master and worker processes must agree on it**: a mixed fleet
/// would misread every frame. Each stream captures the flag once at
/// construction; the environment is re-read per call so tests can stage
/// both formats in one process.
pub fn checksum_enabled() -> bool {
    match std::env::var("MWP_CHECKSUM") {
        Ok(v) => parse_checksum(&v).unwrap_or_else(|e| panic!("MWP_CHECKSUM: {e}")),
        Err(_) => true,
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Hard ceiling on one frame's wire length (header + payload). A length
/// prefix beyond this is treated as stream corruption, not an allocation
/// request — a garbage prefix must never make the receiver reserve
/// gigabytes — and an outbound frame beyond it is a send-side error, so
/// the sender fails fast instead of the receiver blaming corruption.
pub const MAX_WIRE_LEN: usize = 1 << 30;

/// The much smaller ceiling applied while a connection is still
/// **unauthenticated** — reading the enrollment hello/welcome, which are
/// tens of bytes. A pre-enrollment peer must never be able to make the
/// master reserve [`MAX_WIRE_LEN`]-sized buffers by sending one
/// adversarial length prefix.
pub const MAX_HANDSHAKE_WIRE_LEN: usize = 64 * 1024;

/// Wire length of the frame header ([`Frame::encode`]'s fixed prefix):
/// kind (1) + `i` (4) + `j` (4) + run generation (4).
const HEADER_LEN: usize = 13;

/// Write `frame` to `w` as `u32 LE wire length` + the [`Frame::encode`]
/// image, without intermediate allocation: the 17 fixed bytes, the
/// payload (zero-copy from the frame's [`Bytes`]), and — with `checksum`
/// on — a CRC32C over the encoded image (header + payload, **not** the
/// length prefix) as a `u32 LE` trailer covered by the length prefix.
/// All pieces go out in one vectored write, so on a `TCP_NODELAY` socket
/// a frame is one syscall and one segment regardless of the trailer — a
/// separate 4-byte `write` per frame would otherwise double the packet
/// count on small-frame workloads. A frame beyond [`MAX_WIRE_LEN`] is
/// rejected here, on the send side, before any byte hits the wire.
pub fn write_frame_to(w: &mut impl Write, frame: &Frame, checksum: bool) -> io::Result<()> {
    let trailer = if checksum { 4 } else { 0 };
    let wire_len = frame.wire_len() + trailer;
    if wire_len > MAX_WIRE_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("outbound frame of {wire_len} bytes exceeds the {MAX_WIRE_LEN}-byte cap"),
        ));
    }
    let encoded = frame.encode_header();
    let mut prefix = [0u8; 4 + HEADER_LEN];
    prefix[..4].copy_from_slice(&(wire_len as u32).to_le_bytes());
    prefix[4..].copy_from_slice(&encoded);
    let mut trailer_bytes = [0u8; 4];
    if checksum {
        let mut crc = Crc32c::new();
        crc.update(&encoded);
        crc.update(&frame.payload);
        trailer_bytes = crc.finish().to_le_bytes();
    }
    let mut slices = [
        io::IoSlice::new(&prefix),
        io::IoSlice::new(&frame.payload),
        io::IoSlice::new(&trailer_bytes[..trailer]),
    ];
    // Manual write_all_vectored: loop until every byte is out, advancing
    // past whole and partial slices (zero-length slices are skipped by
    // `advance_slices`). Tracking the byte count — rather than testing
    // `slices.is_empty()` — keeps trailing empty slices from stalling
    // the loop.
    let mut remaining = 4 + wire_len;
    let mut slices = &mut slices[..];
    while remaining > 0 {
        match w.write_vectored(slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => {
                remaining -= n;
                io::IoSlice::advance_slices(&mut slices, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Read the next frame from `r`: length prefix, then the whole encoded
/// frame into a recycled buffer from `pool`, decoded zero-copy (the
/// frame's payload is a refcounted slice of the pooled buffer, which
/// returns to the pool when the last view drops).
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary). Everything else that is not a whole, well-formed frame is
/// an error: EOF mid-prefix or mid-frame (`UnexpectedEof`), a length
/// prefix shorter than the 13-byte header (plus the 4-byte CRC trailer
/// when `checksum` is on) or larger than `max_wire_len`
/// ([`MAX_WIRE_LEN`] on enrolled links, [`MAX_HANDSHAKE_WIRE_LEN`]
/// during the handshake), a CRC32C trailer that does not match the
/// received image, or an undecodable header (unknown frame kind).
pub fn read_frame_from(
    r: &mut impl Read,
    pool: &BufferPool,
    max_wire_len: usize,
    checksum: bool,
) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    // EOF before the first prefix byte is a clean close; EOF after it is
    // a truncated stream. This is the longest-lived blocking read in the
    // system (a parked worker sits here between runs), so a signal
    // interrupting it must be retried, not reported as a dead peer.
    let first = loop {
        match r.read(&mut prefix[..1]) {
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    if first == 0 {
        return Ok(None);
    }
    r.read_exact(&mut prefix[1..])?;
    let wire_len = u32::from_le_bytes(prefix) as usize;
    let min_len = HEADER_LEN + if checksum { 4 } else { 0 };
    if wire_len < min_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {wire_len} is shorter than the {min_len}-byte minimum"),
        ));
    }
    if wire_len > max_wire_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {wire_len} exceeds the {max_wire_len}-byte cap"),
        ));
    }
    let mut read_result = Ok(());
    let buf = pool.bytes_with(wire_len, |buf| {
        buf.resize(wire_len, 0);
        read_result = r.read_exact(buf);
    });
    read_result?;
    let image = if checksum {
        let body = wire_len - 4;
        let presented = u32::from_le_bytes(buf[body..].try_into().expect("4-byte trailer"));
        let computed = crc32c(&buf[..body]);
        if presented != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame checksum mismatch: wire says {presented:#010x}, \
                     received bytes hash to {computed:#010x}"
                ),
            ));
        }
        buf.slice(..body)
    } else {
        buf
    };
    Frame::decode_bytes(image).map(Some).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "undecodable frame header (unknown kind tag)")
    })
}

/// The read half of a framed stream. Blocking; `Ok(None)` is a clean EOF.
pub trait FrameRead: Send {
    /// Receive the next frame, or `None` when the peer closed cleanly.
    fn recv_frame(&mut self) -> io::Result<Option<Frame>>;
}

/// The write half of a framed stream. Each frame is flushed on send — the
/// protocol above interleaves small control frames with request/response
/// rounds, so buffering across frames would only add latency.
pub trait FrameWrite: Send {
    /// Send one frame (length-prefixed, flushed).
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()>;
}

/// [`FrameRead`] over any byte reader, with a private [`BufferPool`] so
/// steady-state receives allocate nothing.
pub struct FramedReader<R: Read + Send> {
    inner: R,
    pool: BufferPool,
    checksum: bool,
}

impl<R: Read + Send> FramedReader<R> {
    /// Wrap `inner` with a fresh receive-buffer pool, honoring the
    /// ambient [`checksum_enabled`] setting.
    pub fn new(inner: R) -> Self {
        Self::with_checksum(inner, checksum_enabled())
    }

    /// Wrap `inner` with an explicit checksum setting (tests staging
    /// both wire formats in one process).
    pub fn with_checksum(inner: R, checksum: bool) -> Self {
        FramedReader { inner, pool: BufferPool::new(), checksum }
    }
}

impl<R: Read + Send> FrameRead for FramedReader<R> {
    fn recv_frame(&mut self) -> io::Result<Option<Frame>> {
        read_frame_from(&mut self.inner, &self.pool, MAX_WIRE_LEN, self.checksum)
    }
}

/// [`FrameWrite`] over any byte writer.
pub struct FramedWriter<W: Write + Send> {
    inner: W,
    checksum: bool,
}

impl<W: Write + Send> FramedWriter<W> {
    /// Wrap `inner`, honoring the ambient [`checksum_enabled`] setting.
    pub fn new(inner: W) -> Self {
        Self::with_checksum(inner, checksum_enabled())
    }

    /// Wrap `inner` with an explicit checksum setting.
    pub fn with_checksum(inner: W, checksum: bool) -> Self {
        FramedWriter { inner, checksum }
    }
}

impl<W: Write + Send> FrameWrite for FramedWriter<W> {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame_to(&mut self.inner, frame, self.checksum)
    }
}

/// A connected, bidirectional framed byte stream that can split into
/// independently-owned halves (each direction pumped by its own thread).
///
/// The whole-stream `send_frame`/`recv_frame_capped`/`set_read_timeout`
/// surface exists for the **pre-split enrollment handshake**: an
/// unauthenticated peer's first frames are read on a small wire-length
/// budget and under a read deadline, so a stray or hostile connection
/// can neither trigger a large allocation nor park an accept loop
/// forever. After the handshake the stream splits and the deadline is
/// cleared — enrolled links block indefinitely, as the session protocol
/// requires.
pub trait FrameStream: Send {
    /// Send one frame on the unsplit stream (handshake use).
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()>;
    /// Receive one frame on the unsplit stream, rejecting any wire
    /// length beyond `max_wire_len` (handshake use).
    fn recv_frame_capped(&mut self, max_wire_len: usize) -> io::Result<Option<Frame>>;
    /// Apply (or clear, with `None`) a read deadline to the underlying
    /// socket. A timed-out read surfaces as an ordinary I/O error.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Split into read and write halves.
    fn split(self: Box<Self>) -> io::Result<(Box<dyn FrameRead>, Box<dyn FrameWrite>)>;
    /// Human-readable peer address, for error messages.
    fn peer(&self) -> String;
}

/// TCP-backed [`FrameStream`]. `TCP_NODELAY` is set at construction —
/// the protocol's many small control frames must not sit in Nagle's
/// buffer behind an ACK.
pub struct TcpTransport {
    stream: TcpStream,
    pool: BufferPool,
    checksum: bool,
}

impl TcpTransport {
    /// Wrap a connected stream (sets `TCP_NODELAY`); the checksum flag
    /// is captured once here so the whole stream — handshake and split
    /// halves alike — speaks one wire format.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream, pool: BufferPool::new(), checksum: checksum_enabled() })
    }
}

impl FrameStream for TcpTransport {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame_to(&mut self.stream, frame, self.checksum)
    }

    fn recv_frame_capped(&mut self, max_wire_len: usize) -> io::Result<Option<Frame>> {
        read_frame_from(&mut self.stream, &self.pool, max_wire_len, self.checksum)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn FrameRead>, Box<dyn FrameWrite>)> {
        let reader = self.stream.try_clone()?;
        Ok((
            Box::new(FramedReader::with_checksum(reader, self.checksum)),
            Box::new(FramedWriter::with_checksum(self.stream, self.checksum)),
        ))
    }

    fn peer(&self) -> String {
        match self.stream.peer_addr() {
            Ok(a) => format!("tcp://{a}"),
            Err(_) => "tcp://<unknown>".into(),
        }
    }
}

/// Unix-domain-socket-backed [`FrameStream`].
#[cfg(unix)]
pub struct UdsTransport {
    stream: UnixStream,
    pool: BufferPool,
    checksum: bool,
}

#[cfg(unix)]
impl UdsTransport {
    /// Wrap a connected stream.
    pub fn new(stream: UnixStream) -> Self {
        UdsTransport { stream, pool: BufferPool::new(), checksum: checksum_enabled() }
    }
}

#[cfg(unix)]
impl FrameStream for UdsTransport {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame_to(&mut self.stream, frame, self.checksum)
    }

    fn recv_frame_capped(&mut self, max_wire_len: usize) -> io::Result<Option<Frame>> {
        read_frame_from(&mut self.stream, &self.pool, max_wire_len, self.checksum)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn FrameRead>, Box<dyn FrameWrite>)> {
        let reader = self.stream.try_clone()?;
        Ok((
            Box::new(FramedReader::with_checksum(reader, self.checksum)),
            Box::new(FramedWriter::with_checksum(self.stream, self.checksum)),
        ))
    }

    fn peer(&self) -> String {
        "uds://<peer>".into()
    }
}

// ---------------------------------------------------------------------------
// Listeners and dialing
// ---------------------------------------------------------------------------

/// A listening socket handing out [`FrameStream`] connections. The Unix
/// variant owns its socket path and unlinks it on drop.
pub enum TransportListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener plus the path it is bound to.
    #[cfg(unix)]
    Uds {
        /// The bound listener.
        listener: UnixListener,
        /// Socket path, unlinked when the listener drops.
        path: PathBuf,
    },
}

/// Distinguishes concurrently-bound Unix socket paths within one process.
static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TransportListener {
    /// Bind a loopback listener for `mode` ([`TransportMode::Channel`] has
    /// no listener and is rejected): TCP on `127.0.0.1` with an ephemeral
    /// port, or a Unix socket under the system temp directory.
    pub fn bind(mode: TransportMode) -> io::Result<Self> {
        match mode {
            TransportMode::Channel => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the channel transport has no listener",
            )),
            TransportMode::Tcp => Ok(TransportListener::Tcp(TcpListener::bind("127.0.0.1:0")?)),
            #[cfg(unix)]
            TransportMode::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "mwp-{}-{}.sock",
                    std::process::id(),
                    UDS_COUNTER.fetch_add(1, Ordering::Relaxed),
                ));
                let listener = UnixListener::bind(&path)?;
                Ok(TransportListener::Uds { listener, path })
            }
            #[cfg(not(unix))]
            TransportMode::Uds => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// Bind a TCP listener on an explicit address (e.g. `0.0.0.0:4455`
    /// for workers on other hosts).
    pub fn bind_tcp(addr: &str) -> io::Result<Self> {
        Ok(TransportListener::Tcp(TcpListener::bind(addr)?))
    }

    /// Bind a Unix-domain listener on an explicit socket path. The path
    /// is unlinked when the listener drops, like [`bind`](Self::bind)'s
    /// temp-dir sockets.
    #[cfg(unix)]
    pub fn bind_uds(path: &str) -> io::Result<Self> {
        let path = PathBuf::from(path);
        let listener = UnixListener::bind(&path)?;
        Ok(TransportListener::Uds { listener, path })
    }

    /// Bind honoring `MWP_BIND` (see [`parse_bind_spec`]): an explicit
    /// `tcp://ip:port` or `uds:/path` address when the variable is set —
    /// how a master exposes its listener beyond loopback — else exactly
    /// [`bind`](Self::bind)'s loopback/temp-dir default. The bind
    /// address's scheme must agree with `mode`: a `tcp://` bind under
    /// `MWP_TRANSPORT=uds` is a configuration contradiction and errors
    /// rather than silently ignoring one of the two switches.
    pub fn bind_env(mode: TransportMode) -> io::Result<Self> {
        let spec = match std::env::var("MWP_BIND") {
            Ok(v) => parse_bind_spec(&v).unwrap_or_else(|e| panic!("MWP_BIND: {e}")),
            Err(_) => None,
        };
        let Some(spec) = spec else { return Self::bind(mode) };
        let mismatch = |scheme: &str| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("MWP_BIND is a {scheme} address but the transport mode is {mode:?}"),
            )
        };
        if let Some(addr) = spec.strip_prefix("tcp://") {
            if mode != TransportMode::Tcp {
                return Err(mismatch("tcp://"));
            }
            return Self::bind_tcp(addr);
        }
        #[cfg(unix)]
        if let Some(path) = spec.strip_prefix("uds:") {
            if mode != TransportMode::Uds {
                return Err(mismatch("uds:"));
            }
            return Self::bind_uds(path);
        }
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("MWP_BIND '{spec}' is not supported on this platform"),
        ))
    }

    /// The endpoint string workers dial: `tcp://ip:port` or `uds:/path`.
    pub fn endpoint(&self) -> String {
        match self {
            TransportListener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp://{a}"),
                Err(_) => "tcp://<unknown>".into(),
            },
            #[cfg(unix)]
            TransportListener::Uds { path, .. } => format!("uds:{}", path.display()),
        }
    }

    /// Accept the next connection (blocking).
    pub fn accept(&self) -> io::Result<Box<dyn FrameStream>> {
        match self {
            TransportListener::Tcp(l) => {
                l.set_nonblocking(false)?;
                let (stream, _) = l.accept()?;
                Ok(Box::new(TcpTransport::new(stream)?))
            }
            #[cfg(unix)]
            TransportListener::Uds { listener, .. } => {
                listener.set_nonblocking(false)?;
                let (stream, _) = listener.accept()?;
                Ok(Box::new(UdsTransport::new(stream)))
            }
        }
    }

    /// Accept with a bound: `Ok(None)` if no connection arrived within
    /// `timeout`. Lets an accept loop interleave waiting with liveness
    /// checks (e.g. "did the worker thread that was supposed to dial us
    /// die?") instead of parking forever.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Box<dyn FrameStream>>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let pending = match self {
                TransportListener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    match l.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(Some(Box::new(TcpTransport::new(stream)?)));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
                        Err(e) => return Err(e),
                    }
                }
                #[cfg(unix)]
                TransportListener::Uds { listener, .. } => {
                    listener.set_nonblocking(true)?;
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(Some(Box::new(UdsTransport::new(stream))));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
                        Err(e) => return Err(e),
                    }
                }
            };
            debug_assert!(pending);
            if std::time::Instant::now() >= deadline {
                return Ok(None);
            }
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for TransportListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let TransportListener::Uds { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Dial an endpoint string produced by [`TransportListener::endpoint`]:
/// `tcp://host:port` or `uds:/path/to/socket`.
pub fn connect(endpoint: &str) -> io::Result<Box<dyn FrameStream>> {
    if let Some(addr) = endpoint.strip_prefix("tcp://") {
        return Ok(Box::new(TcpTransport::new(TcpStream::connect(addr)?)?));
    }
    #[cfg(unix)]
    if let Some(path) = endpoint.strip_prefix("uds:") {
        return Ok(Box::new(UdsTransport::new(UnixStream::connect(path)?)));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("unrecognized endpoint '{endpoint}' (expected tcp://host:port or uds:/path)"),
    ))
}

/// Parse an `MWP_BIND` value: empty means "no override" (`None` — the
/// master binds loopback), otherwise an explicit `tcp://ip:port` or
/// `uds:/path` listen address. Strict, like every other `MWP_*` switch:
/// a typo'd bind address must error, not silently leave the master on
/// loopback with remote workers dialing a listener that does not exist.
pub fn parse_bind_spec(value: &str) -> Result<Option<String>, String> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    let valid_tcp = v.strip_prefix("tcp://").is_some_and(|a| !a.is_empty());
    let valid_uds = v.strip_prefix("uds:").is_some_and(|p| !p.is_empty());
    if valid_tcp || valid_uds {
        Ok(Some(v.to_string()))
    } else {
        Err(format!("unknown bind address '{value}' (valid: tcp://ip:port, uds:/path)"))
    }
}

/// An exponential-backoff retry schedule with jitter and a total-deadline
/// cap. Pure arithmetic over an **injected clock** (the caller reports
/// elapsed time), so the exact schedule is unit-testable without
/// sleeping, and deterministic for a fixed seed.
///
/// Each attempt's nominal delay doubles from `base` up to `max`; the
/// issued delay is jittered to 50–100% of nominal (decorrelating a herd
/// of workers that all found the master's port closed at the same
/// instant) and clipped so `elapsed + delay` never overshoots `deadline`.
pub struct Backoff {
    next: Duration,
    max: Duration,
    deadline: Duration,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling up to `max`, expiring at
    /// `deadline` total elapsed time. `seed` drives the jitter.
    pub fn new(base: Duration, max: Duration, deadline: Duration, seed: u64) -> Self {
        Backoff { next: base.max(Duration::from_millis(1)), max, deadline, rng: seed | 1 }
    }

    /// The schedule [`connect_with_retry`] uses: 10 ms doubling to 640 ms,
    /// seeded per process.
    pub fn for_dial(deadline: Duration) -> Self {
        Backoff::new(
            Duration::from_millis(10),
            Duration::from_millis(640),
            deadline,
            u64::from(std::process::id()),
        )
    }

    /// The delay to sleep before the next attempt, given `elapsed` total
    /// wall time since the first attempt — or `None` when the deadline
    /// is exhausted and the caller should give up.
    pub fn next_delay(&mut self, elapsed: Duration) -> Option<Duration> {
        if elapsed >= self.deadline {
            return None;
        }
        let nominal = self.next;
        self.next = (self.next * 2).min(self.max);
        // xorshift64* — tiny, seedable, good enough to decorrelate dials.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit = (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
            / (1u64 << 53) as f64;
        let jittered = nominal.mul_f64(0.5 + 0.5 * unit);
        Some(jittered.min(self.deadline - elapsed))
    }
}

/// Dial with retries: a worker process racing the master's `bind` retries
/// **transient** dial failures (`ConnectionRefused`, a not-yet-created
/// Unix socket path, a reset/aborted accept backlog) on a jittered
/// exponential [`Backoff`] until `deadline` wall time has elapsed.
/// Permanent errors — a malformed endpoint, an unsupported scheme — fail
/// immediately; retrying them would only burn the deadline before
/// reporting the same error.
pub fn connect_with_retry(endpoint: &str, deadline: Duration) -> io::Result<Box<dyn FrameStream>> {
    connect_with_retry_faulty(endpoint, deadline, None)
}

// ---------------------------------------------------------------------------
// Deterministic fault injection (MWP_FAULT)
// ---------------------------------------------------------------------------

/// What a faulty transport does once its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Abort the process — no cleanup, no goodbye frame, the socket is
    /// torn down by the OS. The deterministic stand-in for `kill -9`.
    Kill,
    /// Silently discard every subsequent outbound frame: the peer sees a
    /// healthy socket that has gone mute (detected only by deadline).
    Drop,
    /// Sleep this long before each subsequent outbound frame: a wedged
    /// worker (detected by deadline when the delay exceeds it).
    Delay(Duration),
    /// Write a torn frame — correct length prefix, half the bytes — then
    /// fail every later write: the peer sees stream corruption.
    Truncate,
    /// Flip one bit in the trigger frame's encoded image (after the
    /// CRC32C trailer was computed over the clean bytes) and send it —
    /// once. Earlier and later frames pass unharmed, so the stream
    /// itself stays healthy: with checksums on the receiver detects the
    /// flip and declares the link corrupt; with them off the flipped
    /// payload would be delivered as silently wrong coefficients — the
    /// very failure the checksum exists to catch.
    Corrupt,
    /// Capture outbound data frames and, once the trigger count is
    /// reached **and** a frame from a previous run generation has been
    /// captured, replay that stale frame (verbatim wire image, valid
    /// checksum) ahead of the real one — a delayed duplicate from an
    /// earlier run surfacing mid-run. The receiver's generation check
    /// must reject it structurally; nothing of the old run may leak
    /// into the new one.
    Stale,
    /// Handshake-stage fault: instead of a hello, send an unrelated
    /// frame — a peer that does not speak the enrollment protocol. The
    /// master must reject it (protocol/version) and keep accepting.
    BadHello,
    /// Handshake-stage fault: send a well-formed hello whose HMAC is
    /// corrupted — a peer without the fleet secret. The master must
    /// reject it (authentication) and keep accepting.
    BadAuth,
}

impl FaultAction {
    /// Handshake-stage faults fire once, inside [`enroll_with`], instead
    /// of wrapping the stream's send path like the data-plane faults.
    pub fn is_handshake(self) -> bool {
        matches!(self, FaultAction::BadHello | FaultAction::BadAuth)
    }
}

/// A deterministic transport fault: after `after` outbound data frames
/// (heartbeats are not counted — their timing is wall-clock-driven and
/// would make the trigger nondeterministic), the stream performs its
/// [`FaultAction`]. Parsed from `MWP_FAULT` by [`parse_fault_spec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The misbehavior.
    pub action: FaultAction,
    /// How many outbound data frames pass unharmed first.
    pub after: u64,
}

/// Parse an `MWP_FAULT` value: empty means "no fault" (`None`);
/// otherwise `kill:<n>`, `drop:<n>`, `delay:<n>:<ms>`, `truncate:<n>`,
/// `corrupt:<n>`, or `stale:<n>`, where `<n>` is the number of outbound
/// data frames that pass before the fault fires — or a bare `badhello` /
/// `badauth` handshake fault, which fires at enrollment (there is no
/// frame count to wait for: the handshake is the first exchange).
/// Strict: anything else is an error naming the valid forms.
pub fn parse_fault_spec(value: &str) -> Result<Option<FaultSpec>, String> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    let bad = || {
        format!(
            "unknown fault '{value}' (valid: kill:<n>, drop:<n>, delay:<n>:<ms>, truncate:<n>, \
             corrupt:<n>, stale:<n>, badhello, badauth)"
        )
    };
    match v {
        "badhello" => return Ok(Some(FaultSpec { action: FaultAction::BadHello, after: 0 })),
        "badauth" => return Ok(Some(FaultSpec { action: FaultAction::BadAuth, after: 0 })),
        _ => {}
    }
    let mut parts = v.split(':');
    let action = parts.next().unwrap_or("");
    let after: u64 = parts.next().and_then(|n| n.parse().ok()).ok_or_else(bad)?;
    let spec = match (action, parts.next()) {
        ("kill", None) => FaultSpec { action: FaultAction::Kill, after },
        ("drop", None) => FaultSpec { action: FaultAction::Drop, after },
        ("truncate", None) => FaultSpec { action: FaultAction::Truncate, after },
        ("corrupt", None) => FaultSpec { action: FaultAction::Corrupt, after },
        ("stale", None) => FaultSpec { action: FaultAction::Stale, after },
        ("delay", Some(ms)) => {
            let ms: u64 = ms.parse().map_err(|_| bad())?;
            FaultSpec { action: FaultAction::Delay(Duration::from_millis(ms)), after }
        }
        _ => return Err(bad()),
    };
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(Some(spec))
}

/// The `MWP_FAULT` environment spec, strictly parsed (a typo panics —
/// a chaos leg that silently ran without its fault would be a green CI
/// lying about coverage).
pub fn fault_spec_from_env() -> Option<FaultSpec> {
    match std::env::var("MWP_FAULT") {
        Ok(v) => parse_fault_spec(&v).unwrap_or_else(|e| panic!("MWP_FAULT: {e}")),
        Err(_) => None,
    }
}

/// Shared trigger state of one faulty connection: counts outbound data
/// frames across the unsplit stream and its split write half.
struct FaultState {
    spec: FaultSpec,
    sent: AtomicU64,
    poisoned: std::sync::atomic::AtomicBool,
    /// Whether this stream's wire format carries the CRC32C trailer —
    /// captured once so replayed/corrupted images match what the honest
    /// path would have written.
    checksum: bool,
    /// `stale` capture: the most recent outbound data frame's (run
    /// generation, full wire image). When a frame from a *newer* run
    /// comes through, the held image is promoted to `stale_image` — a
    /// guaranteed previous-generation frame.
    last: std::sync::Mutex<Option<(u32, Vec<u8>)>>,
    /// `stale` replay material: a verbatim wire image from a previous
    /// run generation, valid checksum and all.
    stale_image: std::sync::Mutex<Option<Vec<u8>>>,
    /// The stale replay fires at most once.
    fired: std::sync::atomic::AtomicBool,
}

/// A frame's full wire image — length prefix, header, payload, and (when
/// `checksum` is on) CRC trailer — exactly as the honest write path
/// would emit it.
fn wire_image(frame: &Frame, checksum: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + frame.wire_len() + 4);
    write_frame_to(&mut out, frame, checksum).expect("writing to a Vec cannot fail");
    out
}

impl FaultState {
    fn new(spec: FaultSpec) -> Self {
        FaultState {
            spec,
            sent: AtomicU64::new(0),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            checksum: checksum_enabled(),
            last: std::sync::Mutex::new(None),
            stale_image: std::sync::Mutex::new(None),
            fired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Run one outbound frame through the fault: `Ok(true)` forward it,
    /// `Ok(false)` swallow it, `Err` fail the write. May sleep (delay),
    /// abort the process (kill), or poison the writer (truncate).
    fn on_send(&self, frame: &Frame, w: &mut dyn Write) -> io::Result<bool> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.poisoned.load(Relaxed) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "faulty stream is torn"));
        }
        if frame.tag.kind == FrameKind::Heartbeat {
            // Heartbeats neither count nor trip faults — except on a mute
            // or torn stream, which swallows them like everything else.
            return Ok(!matches!(
                self.spec.action,
                FaultAction::Drop if self.sent.load(Relaxed) >= self.spec.after
            ));
        }
        let n = self.sent.fetch_add(1, Relaxed);
        if self.spec.action == FaultAction::Stale {
            return self.stale_on_send(frame, n, w);
        }
        if n < self.spec.after {
            return Ok(true);
        }
        match self.spec.action {
            FaultAction::Kill => std::process::abort(),
            FaultAction::Drop => Ok(false),
            FaultAction::Delay(d) => {
                thread::sleep(d);
                Ok(true)
            }
            FaultAction::Truncate => {
                // A torn frame: honest length prefix, half the bytes.
                let wire_len = frame.wire_len() + if self.checksum { 4 } else { 0 };
                w.write_all(&(wire_len as u32).to_le_bytes())?;
                let image = frame.encode();
                w.write_all(&image[..image.len() / 2])?;
                w.flush()?;
                self.poisoned.store(true, Relaxed);
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "fault: frame torn mid-write"))
            }
            FaultAction::Corrupt => {
                // Fires exactly once: later frames pass unharmed, so the
                // stream stays usable and only the receiver's checksum
                // verdict decides the link's fate.
                if n > self.spec.after {
                    return Ok(true);
                }
                let mut image = wire_image(frame, self.checksum);
                // Flip one bit past the length prefix — in the payload
                // when there is one, else in the header — while leaving
                // the CRC trailer itself intact, so the trailer honestly
                // vouches for bytes that are no longer there.
                let body_end = image.len() - if self.checksum { 4 } else { 0 };
                let flip_at = (4 + HEADER_LEN).min(body_end - 1);
                image[flip_at] ^= 0x01;
                w.write_all(&image)?;
                w.flush()?;
                Ok(false)
            }
            FaultAction::Stale => unreachable!("handled above"),
            // Handshake faults never reach the stream wrapper — they are
            // consumed by `enroll_with` before any data frame exists.
            FaultAction::BadHello | FaultAction::BadAuth => Ok(true),
        }
    }

    /// The `stale` fault's send path: capture run-stamped data frames,
    /// promote a captured image to replay material once a newer run
    /// generation appears, and — at the trigger count, once — write the
    /// stale image ahead of the real frame.
    fn stale_on_send(&self, frame: &Frame, n: u64, w: &mut dyn Write) -> io::Result<bool> {
        use std::sync::atomic::Ordering::Relaxed;
        // Only run-stamped data frames are capture-worthy: control
        // traffic (hello, run sentinels) rides run 0 or is structurally
        // special, and replaying it would test the wrong rejection.
        if frame.tag.kind.is_block() && frame.run != 0 {
            let image = wire_image(frame, self.checksum);
            let mut last = self.last.lock().expect("fault capture lock");
            if let Some((run, held)) = last.take() {
                if run != frame.run {
                    let mut stale = self.stale_image.lock().expect("fault replay lock");
                    if stale.is_none() {
                        *stale = Some(held);
                    }
                }
            }
            *last = Some((frame.run, image));
        }
        if n >= self.spec.after && !self.fired.load(Relaxed) {
            let replay = self.stale_image.lock().expect("fault replay lock").take();
            if let Some(image) = replay {
                self.fired.store(true, Relaxed);
                w.write_all(&image)?;
                w.flush()?;
            }
        }
        Ok(true)
    }
}

/// Minimal surface the fault wrapper needs from a raw socket, so one
/// generic implementation covers TCP and UDS.
trait RawStream: Read + Write + Send + Sized + 'static {
    fn try_clone_raw(&self) -> io::Result<Self>;
    fn set_read_timeout_raw(&self, t: Option<Duration>) -> io::Result<()>;
    fn peer_desc(&self) -> String;
}

impl RawStream for TcpStream {
    fn try_clone_raw(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_raw(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn peer_desc(&self) -> String {
        match self.peer_addr() {
            Ok(a) => format!("tcp://{a} (faulty)"),
            Err(_) => "tcp://<unknown> (faulty)".into(),
        }
    }
}

#[cfg(unix)]
impl RawStream for UnixStream {
    fn try_clone_raw(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_raw(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn peer_desc(&self) -> String {
        "uds://<peer> (faulty)".into()
    }
}

/// A [`FrameStream`] whose **outbound** frames run through a
/// [`FaultSpec`] trigger (reads are untouched — the faults model a
/// misbehaving *worker*, and the wrapper sits on the worker's side of
/// the wire). Splitting keeps the trigger state shared, so frames sent
/// before the split count toward the trigger.
struct FaultyStream<S: RawStream> {
    stream: S,
    pool: BufferPool,
    state: std::sync::Arc<FaultState>,
}

impl<S: RawStream> FaultyStream<S> {
    fn new(stream: S, spec: FaultSpec) -> Self {
        FaultyStream { stream, pool: BufferPool::new(), state: std::sync::Arc::new(FaultState::new(spec)) }
    }
}

impl<S: RawStream> FrameStream for FaultyStream<S> {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        if self.state.on_send(frame, &mut self.stream)? {
            write_frame_to(&mut self.stream, frame, self.state.checksum)?;
        }
        Ok(())
    }

    fn recv_frame_capped(&mut self, max_wire_len: usize) -> io::Result<Option<Frame>> {
        read_frame_from(&mut self.stream, &self.pool, max_wire_len, self.state.checksum)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout_raw(timeout)
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn FrameRead>, Box<dyn FrameWrite>)> {
        let reader = self.stream.try_clone_raw()?;
        Ok((
            Box::new(FramedReader::with_checksum(reader, self.state.checksum)),
            Box::new(FaultyWriter { inner: self.stream, state: self.state }),
        ))
    }

    fn peer(&self) -> String {
        self.stream.peer_desc()
    }
}

/// The write half of a split [`FaultyStream`].
struct FaultyWriter<S: RawStream> {
    inner: S,
    state: std::sync::Arc<FaultState>,
}

impl<S: RawStream> FrameWrite for FaultyWriter<S> {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        if self.state.on_send(frame, &mut self.inner)? {
            write_frame_to(&mut self.inner, frame, self.state.checksum)?;
        }
        Ok(())
    }
}

/// Dial `endpoint` and wrap the connection in `fault` when one is given
/// (otherwise identical to [`connect`]). The worker binary's connect
/// path: `MWP_FAULT` wraps the worker's side of the wire, so every
/// master-side recovery path can be exercised deterministically.
pub fn connect_faulty(endpoint: &str, fault: Option<FaultSpec>) -> io::Result<Box<dyn FrameStream>> {
    // Handshake-stage faults are enacted inside `enroll_with`, not by
    // wrapping the stream: the connection itself is an honest one.
    let Some(fault) = fault.filter(|f| !f.action.is_handshake()) else {
        return connect(endpoint);
    };
    if let Some(addr) = endpoint.strip_prefix("tcp://") {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        return Ok(Box::new(FaultyStream::new(stream, fault)));
    }
    #[cfg(unix)]
    if let Some(path) = endpoint.strip_prefix("uds:") {
        return Ok(Box::new(FaultyStream::new(UnixStream::connect(path)?, fault)));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("unrecognized endpoint '{endpoint}' (expected tcp://host:port or uds:/path)"),
    ))
}

/// [`connect_with_retry`]'s fault-injecting sibling (same backoff, same
/// transient-error policy).
pub fn connect_with_retry_faulty(
    endpoint: &str,
    deadline: Duration,
    fault: Option<FaultSpec>,
) -> io::Result<Box<dyn FrameStream>> {
    let start = std::time::Instant::now();
    let mut backoff = Backoff::for_dial(deadline);
    let transient = |kind: io::ErrorKind| {
        matches!(
            kind,
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::NotFound
        )
    };
    loop {
        match connect_faulty(endpoint, fault) {
            Ok(s) => return Ok(s),
            Err(e) if transient(e.kind()) => match backoff.next_delay(start.elapsed()) {
                Some(delay) => thread::sleep(delay),
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Enrollment handshake
// ---------------------------------------------------------------------------

/// `Tag::i` sentinel of the hello control frame (worker → master).
/// Distinct from the session sentinels (`RUN_BEGIN`, `RUN_END`), which
/// only ever travel *after* enrollment.
pub const HELLO: u32 = u32::MAX - 2;
/// `Tag::i` sentinel of the welcome control frame (master → worker).
pub const WELCOME: u32 = u32::MAX - 3;
/// `Tag::i` sentinel of the challenge control frame (master → worker):
/// the first frame on every new connection. `Tag::j` carries the
/// master's [`PROTOCOL_VERSION`], the payload its 16-byte challenge
/// nonce.
pub const CHALLENGE: u32 = u32::MAX - 4;
/// `Tag::i` sentinel of the rejection control frame (master → worker):
/// the handshake failed, `Tag::j` names why (one of the `REJECT_*`
/// codes), the payload is a human-readable reason. Sent best-effort
/// before the master drops the connection, so a rejected worker fails
/// with a diagnosis instead of a bare EOF.
pub const REJECT: u32 = u32::MAX - 5;
/// `Tag::j` value in a hello meaning "assign me any free worker slot".
pub const CLAIM_ANY: u32 = u32::MAX;

/// Version of the enrollment handshake this build speaks. A peer
/// presenting any other version — including a pre-versioning build,
/// whose hello has no version field at all — is turned away with a
/// [`REJECT_VERSION`] rejection instead of a decode error, so mixed
/// fleets degrade to a clean, diagnosable refusal.
///
/// v3 extended the frame header with the run-generation field (and made
/// the CRC32C trailer the default wire format): a v2 peer would misread
/// every data frame, so it must be refused at the door, not discovered
/// via corruption mid-run.
pub const PROTOCOL_VERSION: u32 = 3;

/// Reject code: protocol-version mismatch (or a first frame that is not
/// a hello at all — a peer not speaking this protocol).
pub const REJECT_VERSION: u32 = 1;
/// Reject code: the hello's HMAC does not verify — wrong or missing
/// fleet secret.
pub const REJECT_AUTH: u32 = 2;
/// Reject code: the hello presented a stale membership epoch — a
/// connection (or replay) from a previous fleet generation.
pub const REJECT_EPOCH: u32 = 3;
/// Reject code: the claimed worker slot is not the one the master is
/// enrolling.
pub const REJECT_SLOT: u32 = 4;
/// Reject code: the fingerprint does not match what the master expects
/// (a cross-wired loopback connect).
pub const REJECT_FINGERPRINT: u32 = 5;

/// Service id: the master serves matrix-product runs (the worker must run
/// the `mwp-core` Algorithm 2 program).
pub const SERVICE_MATRIX: u8 = 0;
/// Service id: the master serves LU-factorization runs.
pub const SERVICE_LU: u8 = 1;
/// Service id of sessions whose worker programs are supplied in-process
/// (loopback transport): the welcome's service byte is advisory only.
pub const SERVICE_INPROC: u8 = 255;

/// The worker's answer to the master's challenge: who it is and which
/// fleet generation it believes it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The worker slot this connection claims, or `None` to let the
    /// master assign the next free slot (out-of-process workers).
    pub claimed: Option<WorkerId>,
    /// The membership epoch the worker believes is current. `0` means
    /// "fresh connection, no prior generation" — always admissible. A
    /// non-zero epoch that is not the master's current one marks a
    /// stale or replayed connection from a previous fleet generation
    /// and is rejected at the door ([`REJECT_EPOCH`]).
    pub epoch: u64,
    /// The worker's handshake nonce: the master's welcome MAC covers it,
    /// so a recorded welcome cannot be replayed to a later enrollment.
    pub nonce: [u8; 16],
    /// Opaque fingerprint bytes: loopback workers send the platform
    /// fingerprint (and the master verifies it — a cross-wired connect
    /// must fail fast); remote workers send a self-description (binary
    /// version, compute kernel) the master records.
    pub fingerprint: Vec<u8>,
}

/// The master's reply: the connection's identity and link parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Welcome {
    /// The assigned worker slot.
    pub worker: WorkerId,
    /// Per-block link cost `c` of this worker's link.
    pub c: f64,
    /// Compute cost `w` per block update.
    pub w: f64,
    /// Memory capacity `m` in blocks (the worker program's invariant cap).
    pub m: u64,
    /// Wall seconds per model time unit (0 = unpaced), for symmetry with
    /// the master's own pacing — informational on the worker side, which
    /// never paces (the one-port model bills all transfers to the master).
    pub time_scale: f64,
    /// Which worker program the master expects ([`SERVICE_MATRIX`],
    /// [`SERVICE_LU`], or [`SERVICE_INPROC`]).
    pub service: u8,
    /// The fleet's membership epoch at enrollment. Bumped by the session
    /// on every `admit`/`prune_dead`, so it names the exact fleet
    /// generation this worker joined.
    pub epoch: u64,
}

/// How long each side of the enrollment handshake waits for the peer's
/// frame (override with `MWP_HANDSHAKE_TIMEOUT_MS`, mostly for tests). A
/// connection that goes silent mid-handshake is dropped after this —
/// never allowed to park an accept loop forever.
pub fn handshake_timeout() -> Duration {
    let ms = match std::env::var("MWP_HANDSHAKE_TIMEOUT_MS") {
        Ok(v) => parse_millis(&v)
            .unwrap_or_else(|e| panic!("MWP_HANDSHAKE_TIMEOUT_MS: {e}"))
            .unwrap_or(10_000),
        Err(_) => 10_000,
    };
    Duration::from_millis(ms)
}

/// Fixed-field length of a hello payload (layout unchanged since v2):
/// version (4) + epoch (8) + worker nonce (16) + MAC (32); fingerprint
/// bytes follow. A shorter payload can only come from a pre-v2 peer.
const HELLO_FIXED_LEN: usize = 4 + 8 + 16 + 32;
/// Byte offset of the MAC within a hello payload.
const HELLO_MAC_AT: usize = 4 + 8 + 16;
/// Exact length of a welcome payload (layout unchanged since v2): c, w,
/// m, time_scale (8 each) + service (1) + epoch (8) + MAC (32).
const WELCOME_WIRE_LEN: usize = 8 * 4 + 1 + 8 + 32;
/// Byte offset of the MAC within a welcome payload (everything before it
/// is the MAC'd fixed image).
const WELCOME_MAC_AT: usize = WELCOME_WIRE_LEN - 32;

/// The hello's authentication tag: an HMAC over the master's challenge
/// nonce and **every field the hello asserts** (version, claimed slot,
/// epoch, worker nonce, fingerprint), domain-separated from the welcome
/// MAC. Binding the challenge makes a recorded hello worthless against
/// any later connection.
fn hello_mac(
    secret: &[u8],
    challenge: &[u8; 16],
    claim_j: u32,
    epoch: u64,
    nonce: &[u8; 16],
    fingerprint: &[u8],
) -> [u8; 32] {
    auth::hmac_sha256(
        secret,
        &[
            b"mwp-hello-v2",
            challenge,
            &PROTOCOL_VERSION.to_le_bytes(),
            &claim_j.to_le_bytes(),
            &epoch.to_le_bytes(),
            nonce,
            fingerprint,
        ],
    )
}

/// The welcome's authentication tag: an HMAC over the worker's nonce,
/// the assigned slot, and the welcome's fixed fields — the worker's
/// proof that the welcoming master holds the fleet secret and that this
/// welcome answers *this* enrollment, not a recorded one.
fn welcome_mac(secret: &[u8], worker_nonce: &[u8; 16], worker_j: u32, fixed: &[u8]) -> [u8; 32] {
    auth::hmac_sha256(secret, &[b"mwp-welcome-v2", worker_nonce, &worker_j.to_le_bytes(), fixed])
}

/// Encode the master's opening challenge: protocol version in `Tag::j`,
/// the 16-byte challenge nonce as payload.
pub fn challenge_frame(nonce: &[u8; 16]) -> Frame {
    Frame::new(
        Tag { kind: FrameKind::Control, i: CHALLENGE, j: PROTOCOL_VERSION },
        Bytes::from(nonce.to_vec()),
    )
}

/// Decode the master's challenge and return its nonce. A version other
/// than [`PROTOCOL_VERSION`] is refused here, on the worker side, with
/// [`io::ErrorKind::Unsupported`] — the worker-facing half of version
/// negotiation (the master-facing half is [`master_read_hello`]).
pub fn parse_challenge(frame: &Frame) -> io::Result<[u8; 16]> {
    expect_sentinel(frame, CHALLENGE, "challenge")?;
    if frame.tag.j != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!(
                "master speaks enrollment protocol v{}, this build speaks v{PROTOCOL_VERSION}",
                frame.tag.j
            ),
        ));
    }
    frame.payload.as_ref().try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("challenge nonce is {} bytes, expected 16", frame.payload.len()),
        )
    })
}

/// Encode a [`Hello`] answering `challenge`, MAC'd with `secret`.
pub fn hello_frame(hello: &Hello, secret: &[u8], challenge: &[u8; 16]) -> Frame {
    let j = hello.claimed.map_or(CLAIM_ANY, |id| id.index() as u32);
    let mac = hello_mac(secret, challenge, j, hello.epoch, &hello.nonce, &hello.fingerprint);
    let mut payload = Vec::with_capacity(HELLO_FIXED_LEN + hello.fingerprint.len());
    payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    payload.extend_from_slice(&hello.epoch.to_le_bytes());
    payload.extend_from_slice(&hello.nonce);
    payload.extend_from_slice(&mac);
    payload.extend_from_slice(&hello.fingerprint);
    Frame::new(Tag { kind: FrameKind::Control, i: HELLO, j }, Bytes::from(payload))
}

/// Decode a [`Hello`] (structure and version only — authenticity is
/// [`hello_authentic`]'s job, which needs the secret and the challenge).
/// A payload too short to be v2, or one carrying a different version
/// number, errors with [`io::ErrorKind::Unsupported`]: it is a
/// different-protocol peer, not stream corruption.
pub fn parse_hello(frame: &Frame) -> io::Result<Hello> {
    expect_sentinel(frame, HELLO, "hello")?;
    let p = &frame.payload;
    if p.len() < HELLO_FIXED_LEN {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!(
                "hello payload is {} bytes — shorter than a v{PROTOCOL_VERSION} hello \
                 (a pre-v{PROTOCOL_VERSION} peer?)",
                p.len()
            ),
        ));
    }
    let version = u32::from_le_bytes(p[0..4].try_into().expect("len checked"));
    if version != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("peer speaks enrollment protocol v{version}, this build speaks v{PROTOCOL_VERSION}"),
        ));
    }
    let claimed = match frame.tag.j {
        CLAIM_ANY => None,
        idx => Some(WorkerId(idx as usize)),
    };
    Ok(Hello {
        claimed,
        epoch: u64::from_le_bytes(p[4..12].try_into().expect("len checked")),
        nonce: p[12..28].try_into().expect("len checked"),
        fingerprint: p[HELLO_FIXED_LEN..].to_vec(),
    })
}

/// Verify a parsed hello's MAC against the challenge it answers.
/// Constant-time on the tag comparison.
pub fn hello_authentic(
    frame: &Frame,
    hello: &Hello,
    secret: &[u8],
    challenge: &[u8; 16],
) -> bool {
    let presented: [u8; 32] = match frame.payload.get(HELLO_MAC_AT..HELLO_FIXED_LEN) {
        Some(mac) => mac.try_into().expect("32-byte slice"),
        None => return false,
    };
    let expected =
        hello_mac(secret, challenge, frame.tag.j, hello.epoch, &hello.nonce, &hello.fingerprint);
    auth::macs_equal(&presented, &expected)
}

/// Encode a [`Welcome`] as its control frame, MAC'd over the enrolling
/// worker's hello nonce.
pub fn welcome_frame(welcome: &Welcome, secret: &[u8], worker_nonce: &[u8; 16]) -> Frame {
    let mut payload = Vec::with_capacity(WELCOME_WIRE_LEN);
    payload.extend_from_slice(&welcome.c.to_le_bytes());
    payload.extend_from_slice(&welcome.w.to_le_bytes());
    payload.extend_from_slice(&welcome.m.to_le_bytes());
    payload.extend_from_slice(&welcome.time_scale.to_le_bytes());
    payload.push(welcome.service);
    payload.extend_from_slice(&welcome.epoch.to_le_bytes());
    let j = welcome.worker.index() as u32;
    let mac = welcome_mac(secret, worker_nonce, j, &payload);
    payload.extend_from_slice(&mac);
    Frame::new(Tag { kind: FrameKind::Control, i: WELCOME, j }, Bytes::from(payload))
}

/// Decode and authenticate a [`Welcome`] frame: the MAC must verify
/// against this enrollment's own nonce, or the "master" does not hold
/// the fleet secret (or is replaying someone else's welcome) and the
/// worker refuses to serve it ([`io::ErrorKind::PermissionDenied`]).
pub fn parse_welcome(frame: &Frame, secret: &[u8], worker_nonce: &[u8; 16]) -> io::Result<Welcome> {
    expect_sentinel(frame, WELCOME, "welcome")?;
    let p = &frame.payload;
    if p.len() != WELCOME_WIRE_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("welcome payload is {} bytes, expected {WELCOME_WIRE_LEN}", p.len()),
        ));
    }
    let presented: [u8; 32] = p[WELCOME_MAC_AT..].try_into().expect("len checked");
    let expected = welcome_mac(secret, worker_nonce, frame.tag.j, &p[..WELCOME_MAC_AT]);
    if !auth::macs_equal(&presented, &expected) {
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "welcome MAC does not verify: the master does not hold this fleet's secret",
        ));
    }
    let f64_at = |o: usize| f64::from_le_bytes(p[o..o + 8].try_into().expect("len checked"));
    Ok(Welcome {
        worker: WorkerId(frame.tag.j as usize),
        c: f64_at(0),
        w: f64_at(8),
        m: u64::from_le_bytes(p[16..24].try_into().expect("len checked")),
        time_scale: f64_at(24),
        service: p[32],
        epoch: u64::from_le_bytes(p[33..41].try_into().expect("len checked")),
    })
}

/// Encode a handshake rejection: reason code in `Tag::j`, human-readable
/// detail as payload.
pub fn reject_frame(code: u32, reason: &str) -> Frame {
    Frame::new(
        Tag { kind: FrameKind::Control, i: REJECT, j: code },
        Bytes::from(reason.as_bytes().to_vec()),
    )
}

/// Is this frame a handshake rejection?
pub fn is_reject(frame: &Frame) -> bool {
    frame.tag.kind == FrameKind::Control && frame.tag.i == REJECT
}

/// Map a received [`REJECT`] frame to the error the worker surfaces:
/// version mismatches are [`io::ErrorKind::Unsupported`], failed
/// authentication and stale epochs are
/// [`io::ErrorKind::PermissionDenied`], slot/fingerprint disputes are
/// [`io::ErrorKind::InvalidData`]. All of them are **permanent** — the
/// retry loop in [`enroll_with_retry`] gives up on them immediately.
pub fn reject_error(frame: &Frame) -> io::Error {
    let reason = String::from_utf8_lossy(&frame.payload);
    let kind = match frame.tag.j {
        REJECT_VERSION => io::ErrorKind::Unsupported,
        REJECT_AUTH | REJECT_EPOCH => io::ErrorKind::PermissionDenied,
        _ => io::ErrorKind::InvalidData,
    };
    io::Error::new(kind, format!("master rejected enrollment: {reason}"))
}

/// Best-effort rejection: tell the peer why before dropping it. Failures
/// are ignored — the connection is being torn down either way.
pub fn send_reject(stream: &mut dyn FrameStream, code: u32, reason: &str) {
    let _ = stream.send_frame(&reject_frame(code, reason));
}

/// Require `frame` to be the `sentinel` control frame.
fn expect_sentinel(frame: &Frame, sentinel: u32, what: &str) -> io::Result<()> {
    if frame.tag.kind != FrameKind::Control || frame.tag.i != sentinel {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {what} frame, got {:?} (tag.i = {})", frame.tag.kind, frame.tag.i),
        ));
    }
    Ok(())
}

/// A handshake frame must exist — EOF mid-handshake is an error.
pub(crate) fn expect_frame(frame: Option<Frame>, what: &str) -> io::Result<Frame> {
    frame.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, format!("peer closed before {what}"))
    })
}

/// Master side, step 1 of enrollment: put the fresh connection under the
/// [`handshake_timeout`] read deadline and send the protocol challenge.
/// Returns the challenge nonce the peer's hello must answer.
pub fn master_challenge(stream: &mut dyn FrameStream) -> io::Result<[u8; 16]> {
    stream.set_read_timeout(Some(handshake_timeout()))?;
    let nonce = auth::fresh_nonce();
    stream.send_frame(&challenge_frame(&nonce))?;
    Ok(nonce)
}

/// Master side, step 2 of enrollment: read and vet the peer's hello.
/// Every admission gate lives here — protocol structure and version,
/// the HMAC against `challenge` under `secret`, and the membership
/// `epoch` (a hello may present epoch 0, "fresh connection", or the
/// current epoch; anything else is a stale generation). A peer failing
/// any gate is told why with a best-effort [`REJECT`] frame and the
/// error is returned; the caller drops the connection and keeps
/// accepting — one bad dialer must never wedge the fleet's front door.
pub fn master_read_hello(
    stream: &mut dyn FrameStream,
    secret: &[u8],
    challenge: &[u8; 16],
    epoch: u64,
) -> io::Result<Hello> {
    let frame = expect_frame(stream.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN)?, "hello")?;
    let hello = match parse_hello(&frame) {
        Ok(h) => h,
        Err(e) => {
            // Wrong version *or* not a hello at all: either way the peer
            // does not speak this protocol revision. Degrade to a clean,
            // named rejection — never a decode panic.
            send_reject(stream, REJECT_VERSION, &format!("unsupported handshake: {e}"));
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("peer does not speak this handshake: {e}"),
            ));
        }
    };
    if !hello_authentic(&frame, &hello, secret, challenge) {
        send_reject(stream, REJECT_AUTH, "hello MAC does not verify (wrong or missing fleet secret)");
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("unauthenticated hello from {}", stream.peer()),
        ));
    }
    if hello.epoch != 0 && hello.epoch != epoch {
        send_reject(
            stream,
            REJECT_EPOCH,
            &format!("membership epoch {} is stale (fleet is at {epoch})", hello.epoch),
        );
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("stale epoch {} from {} (fleet is at {epoch})", hello.epoch, stream.peer()),
        ));
    }
    Ok(hello)
}

/// Worker-process (or loopback worker-thread) enrollment with the
/// ambient configuration: the fleet secret from `MWP_FLEET_SECRET`, a
/// fresh (epoch-0) membership claim, and no fault injection. See
/// [`enroll_with`].
pub fn enroll(
    stream: Box<dyn FrameStream>,
    claim: Option<WorkerId>,
    fingerprint: &[u8],
) -> io::Result<(WorkerEndpoint, Welcome)> {
    enroll_with(stream, claim, fingerprint, &auth::fleet_secret(), 0, None)
}

/// Worker-process enrollment, fully parameterized: await the master's
/// challenge, answer with a MAC'd hello — claiming `claim` or asking for
/// any slot, presenting `epoch` as the believed fleet generation — and
/// build a socket-backed [`WorkerEndpoint`] from the returned welcome
/// (whose own MAC is verified: mutual authentication). The endpoint
/// drives the exact same worker programs as the channel transport; see
/// [`crate::session::serve_worker`] for the outer loop.
///
/// The handshake runs on the unsplit stream under the
/// [`handshake_timeout`] deadline and the [`MAX_HANDSHAKE_WIRE_LEN`]
/// budget — a silent or hostile "master" cannot park this worker forever
/// or feed it a giant allocation. The deadline is swapped for the
/// liveness deadline before the stream splits into the endpoint's halves
/// (enrolled workers park indefinitely between runs by design; the
/// master's idle-link heartbeats keep the socket warm).
///
/// A handshake-stage [`FaultSpec`] (`badhello`/`badauth`) is enacted
/// here: the hello goes out as an unrelated frame, or with a corrupted
/// MAC — chaos tests use this to exercise the master's rejection path
/// with real processes. Data-plane faults are ignored here (they wrap
/// the stream in [`connect_faulty`] instead).
pub fn enroll_with(
    mut stream: Box<dyn FrameStream>,
    claim: Option<WorkerId>,
    fingerprint: &[u8],
    secret: &[u8],
    epoch: u64,
    fault: Option<FaultSpec>,
) -> io::Result<(WorkerEndpoint, Welcome)> {
    stream.set_read_timeout(Some(handshake_timeout()))?;
    let challenge =
        parse_challenge(&expect_frame(stream.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN)?, "challenge")?)?;
    let hello =
        Hello { claimed: claim, epoch, nonce: auth::fresh_nonce(), fingerprint: fingerprint.to_vec() };
    let outbound = match fault.map(|f| f.action) {
        // A peer that does not speak the protocol: any valid frame that
        // is not a hello.
        Some(FaultAction::BadHello) => Frame::shutdown(),
        // A peer without the secret: a structurally perfect hello whose
        // MAC is off by one bit.
        Some(FaultAction::BadAuth) => {
            let good = hello_frame(&hello, secret, &challenge);
            let mut payload = good.payload.to_vec();
            payload[HELLO_MAC_AT] ^= 0x01;
            Frame::new(good.tag, Bytes::from(payload))
        }
        _ => hello_frame(&hello, secret, &challenge),
    };
    stream.send_frame(&outbound)?;
    let reply = expect_frame(stream.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN)?, "welcome")?;
    if is_reject(&reply) {
        return Err(reject_error(&reply));
    }
    let welcome = parse_welcome(&reply, secret, &hello.nonce)?;
    // Enrolled: swap the handshake deadline for the liveness deadline.
    // The master's idle-link heartbeats keep arriving even while this
    // worker is parked between runs, so only a dead or wedged master
    // trips it; with liveness off the link blocks indefinitely, as the
    // session protocol originally required.
    stream.set_read_timeout(liveness().map(|(_, deadline)| deadline))?;
    if let Some(claimed) = claim {
        if welcome.worker != claimed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("claimed slot {} but was welcomed as {}", claimed.index(), welcome.worker.index()),
            ));
        }
    }
    let (reader, writer) = stream.split()?;
    Ok((WorkerEndpoint::remote(welcome.worker, reader, writer), welcome))
}

/// Dial + enroll with retries: the worker binary's whole connection
/// story in one call. **Transient** failures — the master's listener not
/// up yet, a connection refused/reset/aborted mid-churn, a not-yet-bound
/// Unix socket path, a peer that closed before answering — retry on the
/// jittered exponential [`Backoff`] until `deadline` elapses. Everything
/// else fails **fast**: an authentication rejection, a version mismatch,
/// or a slot dispute will not change on retry, and hammering the
/// master's accept loop with doomed handshakes would only hide the real
/// error behind a timeout.
pub fn enroll_with_retry(
    endpoint: &str,
    deadline: Duration,
    claim: Option<WorkerId>,
    fingerprint: &[u8],
) -> io::Result<(WorkerEndpoint, Welcome)> {
    enroll_with_retry_faulty(endpoint, deadline, claim, fingerprint, None)
}

/// [`enroll_with_retry`] with fault injection: data-plane faults wrap
/// the stream ([`connect_faulty`]), handshake faults fire inside
/// [`enroll_with`].
pub fn enroll_with_retry_faulty(
    endpoint: &str,
    deadline: Duration,
    claim: Option<WorkerId>,
    fingerprint: &[u8],
    fault: Option<FaultSpec>,
) -> io::Result<(WorkerEndpoint, Welcome)> {
    let secret = auth::fleet_secret();
    let start = std::time::Instant::now();
    let mut backoff = Backoff::for_dial(deadline);
    let transient = |kind: io::ErrorKind| {
        matches!(
            kind,
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::NotFound
                | io::ErrorKind::UnexpectedEof
        )
    };
    loop {
        let attempt = connect_faulty(endpoint, fault)
            .and_then(|stream| enroll_with(stream, claim, fingerprint, &secret, 0, fault));
        match attempt {
            Ok(enrolled) => return Ok(enrolled),
            Err(e) if transient(e.kind()) => match backoff.next_delay(start.elapsed()) {
                Some(delay) => thread::sleep(delay),
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// RemoteLink: the master-facing half of a socket link
// ---------------------------------------------------------------------------

/// The master side of one socket-backed link.
///
/// Internally this is a channel-backed [`MasterSide`] — the very struct
/// the channel transport hands to [`crate::MasterEndpoint`], with pacing,
/// one-port metering, and statistics untouched — whose worker half is
/// bridged to the socket by two pump threads:
///
/// * the **out pump** drains master→worker frames from the channel onto
///   the socket; it exits after forwarding a [`Frame::shutdown`] (or,
///   when the master endpoint drops without one, after sending a
///   best-effort shutdown of its own), so the remote worker always
///   observes an orderly end-of-session;
/// * the **in pump** reads worker→master frames off the socket into the
///   channel and exits on EOF or a transport error — at which point a
///   master blocked in `recv` observes the same "worker died" channel
///   error the in-process transport produces.
///
/// Pump threads never meter or pace: the master pays for a transfer when
/// the frame crosses its `MasterSide`, exactly as with channel links, so
/// the one-port model's accounting is transport-independent.
pub struct RemoteLink {
    side: MasterSide,
    pumps: [JoinHandle<()>; 2],
}

impl RemoteLink {
    /// Bridge split stream halves into a channel-backed link for worker
    /// `id` with per-block cost `c` and the network's pacing.
    pub fn attach(
        reader: Box<dyn FrameRead>,
        writer: Box<dyn FrameWrite>,
        c: f64,
        pacing: Pacing,
        id: WorkerId,
    ) -> RemoteLink {
        let (master_side, worker_side) = Link::new(c, pacing).split();
        let (to_worker_rx, to_master_tx) = worker_side.into_channels();
        let heartbeat = liveness().map(|(interval, _)| interval);
        let mut writer = writer;
        let out_pump = thread::Builder::new()
            .name(format!("mwp-pump-out-{}", id.index()))
            .spawn(move || {
                loop {
                    let frame = match heartbeat {
                        // Idle-link-only heartbeats: a probe goes out only
                        // when a full heartbeat period passed with nothing
                        // to forward, so a busy link pays zero overhead.
                        Some(interval) => match to_worker_rx.recv_timeout(interval) {
                            Ok(f) => f,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                if writer.send_frame(&Frame::heartbeat()).is_err() {
                                    break; // worker gone; in-pump reports it
                                }
                                continue;
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                                // Master endpoint dropped without a shutdown
                                // frame: synthesize one so the remote worker
                                // still sees an orderly close.
                                let _ = writer.send_frame(&Frame::shutdown());
                                break;
                            }
                        },
                        None => match to_worker_rx.recv() {
                            Ok(f) => f,
                            Err(_) => {
                                let _ = writer.send_frame(&Frame::shutdown());
                                break;
                            }
                        },
                    };
                    let is_shutdown = frame.tag.kind == FrameKind::Shutdown;
                    if writer.send_frame(&frame).is_err() || is_shutdown {
                        break;
                    }
                }
            })
            .expect("spawn transport out-pump");
        let mut reader = reader;
        let death_flag = master_side.death_flag();
        let in_pump = thread::Builder::new()
            .name(format!("mwp-pump-in-{}", id.index()))
            .spawn(move || {
                // The socket carries the liveness read deadline (set before
                // the split), so a worker silent past `MWP_DEADLINE_MS` —
                // no data, no heartbeats — surfaces here as a timed-out
                // read. Any exit marks the link dead and drops the channel
                // sender, which a master blocked in `recv` observes as the
                // same "worker died" error the in-process transport
                // produces. Worker heartbeats are swallowed here; they
                // exist only to feed the socket's deadline.
                loop {
                    match reader.recv_frame() {
                        Ok(Some(f)) if f.tag.kind == FrameKind::Heartbeat => continue,
                        Ok(Some(f)) => {
                            if to_master_tx.send(f).is_err() {
                                break; // master endpoint gone
                            }
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
                death_flag.store(true, std::sync::atomic::Ordering::Release);
            })
            .expect("spawn transport in-pump");
        RemoteLink { side: master_side, pumps: [out_pump, in_pump] }
    }

    /// Disassemble into the endpoint-facing side and the pump handles
    /// (joined by the owning session at teardown).
    pub(crate) fn into_parts(self) -> (MasterSide, [JoinHandle<()>; 2]) {
        (self.side, self.pumps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameKind, Tag};
    use bytes::Bytes;

    fn frame(kind: FrameKind, i: usize, j: usize, payload: &[u8]) -> Frame {
        Frame::new(Tag::new(kind, i, j), Bytes::from(payload.to_vec()))
    }

    /// A reader that hands out its bytes at most `chunk` at a time —
    /// simulating TCP split reads, where one frame arrives across many
    /// `read` calls.
    struct SplitReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for SplitReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// Raw (checksum-less) wire image of `frames` — the `MWP_CHECKSUM=off`
    /// format. Checksum-format tests build their wire with
    /// [`checked_wire_of`].
    fn wire_of(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            write_frame_to(&mut out, f, false).unwrap();
        }
        out
    }

    /// Wire image with the CRC32C trailer (the default format).
    fn checked_wire_of(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            write_frame_to(&mut out, f, true).unwrap();
        }
        out
    }

    #[test]
    fn framing_roundtrip_preserves_frames() {
        let frames = [
            frame(FrameKind::BlockB, 3, 17, &[1, 2, 3, 4]),
            frame(FrameKind::Control, 0, 0, &[]),
            Frame::shutdown(),
        ];
        let wire = wire_of(&frames);
        let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
        let pool = BufferPool::new();
        for f in &frames {
            assert_eq!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().as_ref(), Some(f));
        }
        assert!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn checksummed_framing_roundtrip_preserves_frames_and_run_tags() {
        let frames = [
            Frame::new_in_run(Tag::new(FrameKind::BlockB, 3, 17), 9, Bytes::from(vec![1, 2, 3, 4])),
            frame(FrameKind::Control, 0, 0, &[]),
            Frame::shutdown(),
        ];
        let wire = checked_wire_of(&frames);
        let mut r = SplitReader { data: wire, pos: 0, chunk: 1 };
        let pool = BufferPool::new();
        for f in &frames {
            assert_eq!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, true).unwrap().as_ref(), Some(f));
        }
        assert!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, true).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        let f = Frame::new_in_run(Tag::new(FrameKind::CResult, 2, 5), 3, Bytes::from(vec![7u8; 48]));
        let clean = checked_wire_of(std::slice::from_ref(&f));
        // Flip one bit at every position past the length prefix —
        // header, payload, and the trailer itself: every single one
        // must be detected, never delivered as a (wrong) frame.
        for at in 4..clean.len() {
            let mut wire = clean.clone();
            wire[at] ^= 0x10;
            let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
            let err = read_frame_from(&mut r, &BufferPool::new(), MAX_WIRE_LEN, true).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at byte {at}");
        }
    }

    #[test]
    fn split_reads_reassemble_whole_frames() {
        // One byte per read() call: the framing layer must reassemble.
        let frames = [frame(FrameKind::BlockA, 9, 9, &[7u8; 100]), frame(FrameKind::CResult, 1, 2, &[8u8; 33])];
        let wire = wire_of(&frames);
        let mut r = SplitReader { data: wire, pos: 0, chunk: 1 };
        let pool = BufferPool::new();
        for f in &frames {
            assert_eq!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().as_ref(), Some(f));
        }
        assert!(read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().is_none());
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_hang() {
        let wire = wire_of(&[frame(FrameKind::BlockB, 0, 0, &[5u8; 64])]);
        let pool = BufferPool::new();
        // Cut at every interesting boundary: mid-prefix, mid-header
        // (both before and inside the run-generation field), and
        // mid-payload.
        for cut in [1, 3, 4 + 4, 4 + 10, 4 + 12, wire.len() - 1] {
            let mut r = SplitReader { data: wire[..cut].to_vec(), pos: 0, chunk: usize::MAX };
            let err = read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // Same boundaries under the checksum format, plus a cut inside
        // the CRC trailer itself.
        let wire = checked_wire_of(&[frame(FrameKind::BlockB, 0, 0, &[5u8; 64])]);
        for cut in [1, 3, 4 + 4, 4 + 10, 4 + 12, wire.len() - 3, wire.len() - 1] {
            let mut r = SplitReader { data: wire[..cut].to_vec(), pos: 0, chunk: usize::MAX };
            let err = read_frame_from(&mut r, &pool, MAX_WIRE_LEN, true).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "checksummed cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        // 3 GiB length prefix: must be InvalidData, not an allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(3u32 << 30).to_le_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
        let err = read_frame_from(&mut r, &BufferPool::new(), MAX_WIRE_LEN, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "got: {err}");
    }

    #[test]
    fn undersized_length_prefix_is_rejected() {
        // A prefix shorter than the 13-byte header can never frame a
        // valid message; under the checksum format the floor is 17
        // (header + CRC trailer).
        for len in 0u32..13 {
            let mut wire = Vec::new();
            wire.extend_from_slice(&len.to_le_bytes());
            wire.extend_from_slice(&vec![0u8; len as usize]);
            let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
            let err = read_frame_from(&mut r, &BufferPool::new(), MAX_WIRE_LEN, false).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "len {len}");
        }
        for len in 0u32..17 {
            let mut wire = Vec::new();
            wire.extend_from_slice(&len.to_le_bytes());
            wire.extend_from_slice(&vec![0u8; len as usize]);
            let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
            let err = read_frame_from(&mut r, &BufferPool::new(), MAX_WIRE_LEN, true).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "checksummed len {len}");
        }
    }

    #[test]
    fn garbage_kind_tag_is_rejected() {
        let mut wire = wire_of(&[frame(FrameKind::BlockA, 1, 1, &[1, 2, 3])]);
        wire[4] = 200; // corrupt the kind byte inside the framed image
        let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
        let err = read_frame_from(&mut r, &BufferPool::new(), MAX_WIRE_LEN, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checksum_parser_is_strict() {
        assert_eq!(parse_checksum(""), Ok(true));
        assert_eq!(parse_checksum("  "), Ok(true));
        assert_eq!(parse_checksum("on"), Ok(true));
        assert_eq!(parse_checksum("off"), Ok(false));
        for bad in ["ON", "true", "1", "0", "yes", "crc32c"] {
            let err = parse_checksum(bad).unwrap_err();
            assert!(err.contains("on"), "'{bad}' error must name the valid values: {err}");
        }
    }

    #[test]
    fn received_payloads_reuse_pooled_buffers() {
        let wire = wire_of(&[frame(FrameKind::BlockB, 0, 0, &[9u8; 256])]);
        let pool = BufferPool::new();
        let mut r = SplitReader { data: wire.clone(), pos: 0, chunk: usize::MAX };
        let f1 = read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().unwrap();
        let first_ptr = f1.payload.as_ptr();
        drop(f1); // last view: the buffer returns to the pool
        assert_eq!(pool.idle_buffers(), 1);
        let mut r = SplitReader { data: wire, pos: 0, chunk: usize::MAX };
        let f2 = read_frame_from(&mut r, &pool, MAX_WIRE_LEN, false).unwrap().unwrap();
        // Second receive lands in the recycled storage (same backing
        // buffer, so same payload offset within it).
        assert_eq!(f2.payload.as_ptr(), first_ptr);
    }

    #[test]
    fn hello_welcome_roundtrip() {
        let secret = b"roundtrip-secret";
        let challenge = auth::fresh_nonce();
        let h1 = Hello {
            claimed: Some(WorkerId(3)),
            epoch: 7,
            nonce: auth::fresh_nonce(),
            fingerprint: b"fp".to_vec(),
        };
        let f1 = hello_frame(&h1, secret, &challenge);
        let parsed = parse_hello(&f1).unwrap();
        assert_eq!(parsed, h1);
        assert!(hello_authentic(&f1, &parsed, secret, &challenge));
        let h2 = Hello { claimed: None, epoch: 0, nonce: auth::fresh_nonce(), fingerprint: vec![] };
        let f2 = hello_frame(&h2, secret, &challenge);
        let parsed2 = parse_hello(&f2).unwrap();
        assert_eq!(parsed2.claimed, None);
        assert!(hello_authentic(&f2, &parsed2, secret, &challenge));
        let welcome = Welcome {
            worker: WorkerId(2),
            c: 4.0,
            w: 1.5,
            m: 60,
            time_scale: 0.25,
            service: SERVICE_LU,
            epoch: 7,
        };
        let wf = welcome_frame(&welcome, secret, &h1.nonce);
        let back = parse_welcome(&wf, secret, &h1.nonce).unwrap();
        assert_eq!(back, welcome);
    }

    #[test]
    fn handshake_rejects_wrong_frame() {
        assert!(parse_hello(&Frame::shutdown()).is_err());
        assert!(parse_challenge(&Frame::shutdown()).is_err());
    }

    #[test]
    fn challenge_roundtrip_and_version_gate() {
        let nonce = auth::fresh_nonce();
        assert_eq!(parse_challenge(&challenge_frame(&nonce)).unwrap(), nonce);
        // A master speaking any other protocol version is refused with
        // Unsupported — a clean degrade, not a decode panic.
        let mut alien = challenge_frame(&nonce);
        alien.tag.j = PROTOCOL_VERSION + 1;
        assert_eq!(parse_challenge(&alien).unwrap_err().kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn hello_from_another_protocol_version_is_unsupported_not_corrupt() {
        let secret = b"s";
        let challenge = auth::fresh_nonce();
        let hello =
            Hello { claimed: None, epoch: 0, nonce: auth::fresh_nonce(), fingerprint: vec![] };
        // Version field rewritten: parse must classify it as a foreign
        // protocol revision.
        let good = hello_frame(&hello, secret, &challenge);
        let mut payload = good.payload.to_vec();
        payload[0..4].copy_from_slice(&1u32.to_le_bytes());
        let v1 = Frame::new(good.tag, Bytes::from(payload));
        assert_eq!(parse_hello(&v1).unwrap_err().kind(), io::ErrorKind::Unsupported);
        // A pre-versioning hello (short payload — the v1 wire format was
        // just fingerprint bytes) classifies the same way.
        let legacy = Frame::new(
            Tag { kind: FrameKind::Control, i: HELLO, j: CLAIM_ANY },
            Bytes::from(b"fp".to_vec()),
        );
        assert_eq!(parse_hello(&legacy).unwrap_err().kind(), io::ErrorKind::Unsupported);
    }

    /// A peer from the previous protocol revision — structurally valid
    /// v2 hello, version field and all — must be turned away with the
    /// coded [`REJECT_VERSION`], not a decode error: a v2 build misreads
    /// every v3 data frame, so the door is where it has to stop.
    #[test]
    fn previous_version_peer_is_rejected_with_a_version_code() {
        let secret = b"version-gate-secret";
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let master = thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let err = master_challenge(conn.as_mut())
                .and_then(|ch| master_read_hello(conn.as_mut(), secret, &ch, 1).map(|_| ()))
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        });
        let mut conn = connect_with_retry(&endpoint, Duration::from_secs(5)).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let challenge =
            parse_challenge(&expect_frame(conn.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN).unwrap(), "challenge").unwrap())
                .unwrap();
        let hello = Hello { claimed: None, epoch: 0, nonce: auth::fresh_nonce(), fingerprint: vec![] };
        let good = hello_frame(&hello, secret, &challenge);
        let mut payload = good.payload.to_vec();
        payload[0..4].copy_from_slice(&(PROTOCOL_VERSION - 1).to_le_bytes());
        conn.send_frame(&Frame::new(good.tag, Bytes::from(payload))).unwrap();
        let reply = expect_frame(conn.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN).unwrap(), "reject").unwrap();
        assert!(is_reject(&reply), "expected a reject frame, got {:?}", reply.tag);
        assert_eq!(reply.tag.j, REJECT_VERSION, "the rejection must carry the version code");
        assert_eq!(reject_error(&reply).kind(), io::ErrorKind::Unsupported);
        master.join().unwrap();
    }

    #[test]
    fn wrong_secret_fails_both_mac_directions() {
        let challenge = auth::fresh_nonce();
        let hello = Hello {
            claimed: Some(WorkerId(0)),
            epoch: 0,
            nonce: auth::fresh_nonce(),
            fingerprint: b"x".to_vec(),
        };
        let f = hello_frame(&hello, b"worker-secret", &challenge);
        let parsed = parse_hello(&f).unwrap();
        assert!(!hello_authentic(&f, &parsed, b"master-secret", &challenge));
        // And a tampered field breaks the MAC even under the right secret.
        let mut tampered = f.payload.to_vec();
        *tampered.last_mut().unwrap() ^= 1; // flip a fingerprint bit
        let tf = Frame::new(f.tag, Bytes::from(tampered));
        let tp = parse_hello(&tf).unwrap();
        assert!(!hello_authentic(&tf, &tp, b"worker-secret", &challenge));
        let welcome = Welcome {
            worker: WorkerId(0),
            c: 1.0,
            w: 1.0,
            m: 10,
            time_scale: 0.0,
            service: SERVICE_MATRIX,
            epoch: 1,
        };
        let wf = welcome_frame(&welcome, b"master-secret", &hello.nonce);
        let err = parse_welcome(&wf, b"worker-secret", &hello.nonce).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        // Replaying a welcome MAC'd for another enrollment's nonce fails.
        let other_nonce = auth::fresh_nonce();
        let err = parse_welcome(&wf, b"master-secret", &other_nonce).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn reject_frames_map_to_the_right_error_kinds() {
        for (code, kind) in [
            (REJECT_VERSION, io::ErrorKind::Unsupported),
            (REJECT_AUTH, io::ErrorKind::PermissionDenied),
            (REJECT_EPOCH, io::ErrorKind::PermissionDenied),
            (REJECT_SLOT, io::ErrorKind::InvalidData),
            (REJECT_FINGERPRINT, io::ErrorKind::InvalidData),
        ] {
            let f = reject_frame(code, "nope");
            assert!(is_reject(&f));
            let e = reject_error(&f);
            assert_eq!(e.kind(), kind, "code {code}");
            assert!(e.to_string().contains("nope"));
        }
    }

    /// The full master/worker handshake over a real socket, plus every
    /// rejection path — and the master keeps accepting after each one.
    #[test]
    fn enrollment_round_rejects_impostors_and_admits_the_fleet() {
        let secret = b"fleet-secret";
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let master = thread::spawn(move || {
            let mut outcomes = Vec::new();
            // Serve four dialers; only the last is legitimate.
            for _ in 0..4 {
                let mut conn = listener.accept().unwrap();
                let outcome = master_challenge(conn.as_mut())
                    .and_then(|ch| master_read_hello(conn.as_mut(), secret, &ch, 5))
                    .map(|hello| {
                        let welcome = Welcome {
                            worker: WorkerId(0),
                            c: 2.0,
                            w: 1.0,
                            m: 40,
                            time_scale: 0.0,
                            service: SERVICE_MATRIX,
                            epoch: 5,
                        };
                        conn.send_frame(&welcome_frame(&welcome, secret, &hello.nonce)).unwrap();
                    });
                outcomes.push(outcome.map_err(|e| e.kind()));
            }
            outcomes
        });
        let dial = || connect_with_retry(&endpoint, Duration::from_secs(5)).unwrap();
        // 1: wrong secret.
        let err = enroll_with(dial(), None, b"", b"not-the-secret", 0, None)
            .err()
            .expect("wrong secret must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        // 2: stale epoch.
        let err =
            enroll_with(dial(), None, b"", secret, 4, None).err().expect("stale epoch rejected");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert!(err.to_string().contains("stale"), "got: {err}");
        // 3: does not even speak the protocol (badhello fault).
        let fault = Some(FaultSpec { action: FaultAction::BadHello, after: 0 });
        let err =
            enroll_with(dial(), None, b"", secret, 0, fault).err().expect("bad hello rejected");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        // 4: the real fleet member — current epoch, right secret.
        let (ep, welcome) = enroll_with(dial(), None, b"fp", secret, 5, None).unwrap();
        assert_eq!(welcome.epoch, 5);
        assert_eq!(welcome.worker, WorkerId(0));
        drop(ep);
        let outcomes = master.join().unwrap();
        assert_eq!(outcomes[0], Err(io::ErrorKind::PermissionDenied));
        assert_eq!(outcomes[1], Err(io::ErrorKind::PermissionDenied));
        assert_eq!(outcomes[2], Err(io::ErrorKind::Unsupported));
        assert!(outcomes[3].is_ok(), "the legitimate worker enrolls after three rejections");
    }

    /// A version rejection must fail fast — not burn the whole dial
    /// deadline in backoff like a refused connection does.
    #[test]
    fn enroll_with_retry_fails_fast_on_rejection() {
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let master = thread::spawn(move || {
            // A master from a different protocol era: its challenge
            // carries a version this build does not speak.
            let mut conn = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut alien = challenge_frame(&auth::fresh_nonce());
            alien.tag.j = PROTOCOL_VERSION + 1;
            conn.send_frame(&alien).unwrap();
            // Hold the connection open until the worker walks away.
            let _ = conn.recv_frame_capped(MAX_HANDSHAKE_WIRE_LEN);
        });
        let t0 = std::time::Instant::now();
        let err = enroll_with_retry(&endpoint, Duration::from_secs(30), None, b"")
            .err()
            .expect("version mismatch must be an error");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "a permanent rejection must not be retried until the 30s deadline"
        );
        master.join().unwrap();
    }

    #[test]
    fn bind_spec_parser_is_strict() {
        assert_eq!(parse_bind_spec(""), Ok(None));
        assert_eq!(parse_bind_spec("  "), Ok(None));
        assert_eq!(
            parse_bind_spec("tcp://0.0.0.0:4455"),
            Ok(Some("tcp://0.0.0.0:4455".to_string()))
        );
        assert_eq!(parse_bind_spec("uds:/tmp/mwp.sock"), Ok(Some("uds:/tmp/mwp.sock".to_string())));
        for bad in ["0.0.0.0:4455", "tcp://", "uds:", "http://x", "loopback"] {
            let err = parse_bind_spec(bad).unwrap_err();
            assert!(err.contains("tcp://"), "'{bad}' error must name the valid forms: {err}");
        }
    }

    #[test]
    fn bind_env_honors_address_and_rejects_scheme_mismatch() {
        // Env staging is safe here: MWP_BIND is read only by this call.
        std::env::set_var("MWP_BIND", "tcp://127.0.0.1:0");
        let listener = TransportListener::bind_env(TransportMode::Tcp).unwrap();
        assert!(listener.endpoint().starts_with("tcp://127.0.0.1:"));
        let err = TransportListener::bind_env(TransportMode::Uds)
            .err()
            .expect("tcp bind spec under uds transport must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "tcp bind under uds transport");
        std::env::remove_var("MWP_BIND");
        // Unset: plain loopback default.
        let listener = TransportListener::bind_env(TransportMode::Tcp).unwrap();
        assert!(listener.endpoint().starts_with("tcp://127.0.0.1:"));
    }

    #[test]
    fn transport_mode_parser_is_strict() {
        assert_eq!(parse_transport_mode(""), Ok(TransportMode::Channel));
        assert_eq!(parse_transport_mode("channel"), Ok(TransportMode::Channel));
        assert_eq!(parse_transport_mode("tcp"), Ok(TransportMode::Tcp));
        assert_eq!(parse_transport_mode("uds"), Ok(TransportMode::Uds));
        let err = parse_transport_mode("pigeon").unwrap_err();
        for name in TransportMode::NAMES {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn tcp_stream_carries_frames_both_ways() {
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let h = thread::spawn(move || {
            let stream = connect(&endpoint).unwrap();
            let (mut r, mut w) = stream.split().unwrap();
            // Echo one frame back with a changed tag.
            let f = r.recv_frame().unwrap().unwrap();
            w.send_frame(&Frame::new(Tag::new(FrameKind::CResult, 7, 7), f.payload)).unwrap();
        });
        let conn = listener.accept().unwrap();
        let (mut r, mut w) = conn.split().unwrap();
        w.send_frame(&frame(FrameKind::BlockA, 1, 2, &[1, 2, 3])).unwrap();
        let back = r.recv_frame().unwrap().unwrap();
        assert_eq!(back.tag, Tag::new(FrameKind::CResult, 7, 7));
        assert_eq!(&back.payload[..], &[1, 2, 3]);
        assert!(r.recv_frame().unwrap().is_none(), "peer closed cleanly");
        h.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn uds_stream_carries_frames_and_unlinks_its_path() {
        let listener = TransportListener::bind(TransportMode::Uds).unwrap();
        let endpoint = listener.endpoint();
        let path = match &listener {
            TransportListener::Uds { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        let h = thread::spawn(move || {
            let stream = connect(&endpoint).unwrap();
            let (mut r, mut w) = stream.split().unwrap();
            let f = r.recv_frame().unwrap().unwrap();
            w.send_frame(&f).unwrap();
        });
        let conn = listener.accept().unwrap();
        let (mut r, mut w) = conn.split().unwrap();
        let sent = frame(FrameKind::LuPanel, 3, 0, &[9u8; 40]);
        w.send_frame(&sent).unwrap();
        assert_eq!(r.recv_frame().unwrap().unwrap(), sent);
        h.join().unwrap();
        assert!(path.exists());
        drop((r, w, listener));
        assert!(!path.exists(), "socket path must be unlinked on drop");
    }

    #[test]
    fn remote_link_bridges_a_socket_to_master_side_semantics() {
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        // "Remote worker": echo frames until shutdown.
        let h = thread::spawn(move || {
            let stream = connect(&endpoint).unwrap();
            let (mut r, mut w) = stream.split().unwrap();
            while let Some(f) = r.recv_frame().unwrap() {
                if f.tag.kind == FrameKind::Shutdown {
                    break;
                }
                let _ = w.send_frame(&Frame::new(Tag::new(FrameKind::CResult, f.tag.i as usize, 0), f.payload));
            }
        });
        let conn = listener.accept().unwrap();
        let (reader, writer) = conn.split().unwrap();
        let link = RemoteLink::attach(reader, writer, 2.0, Pacing::OFF, WorkerId(0));
        let (side, pumps) = link.into_parts();
        let cost = side.send(frame(FrameKind::BlockA, 5, 0, &[1u8; 16]), 2);
        assert_eq!(cost, 4.0, "pacing cost is metered on the master side");
        let (back, _) = side.recv(2).unwrap();
        assert_eq!(back.tag.i, 5);
        let snap = side.stats().snapshot();
        assert_eq!(snap.blocks_to_worker, 2);
        assert_eq!(snap.blocks_to_master, 2);
        side.send(Frame::shutdown(), 0);
        for p in pumps {
            p.join().unwrap();
        }
        h.join().unwrap();
    }

    #[test]
    fn millis_parser_is_strict() {
        assert_eq!(parse_millis(""), Ok(None));
        assert_eq!(parse_millis("  "), Ok(None));
        assert_eq!(parse_millis("0"), Ok(Some(0)));
        assert_eq!(parse_millis("2500"), Ok(Some(2500)));
        assert_eq!(parse_millis(" 75 "), Ok(Some(75)));
        for bad in ["1.5", "-1", "1s", "fast", "1_000"] {
            assert!(parse_millis(bad).is_err(), "'{bad}' must be rejected, not defaulted");
        }
    }

    #[test]
    fn fault_spec_parser_is_strict() {
        assert_eq!(parse_fault_spec(""), Ok(None));
        assert_eq!(
            parse_fault_spec("kill:3"),
            Ok(Some(FaultSpec { action: FaultAction::Kill, after: 3 }))
        );
        assert_eq!(
            parse_fault_spec("drop:0"),
            Ok(Some(FaultSpec { action: FaultAction::Drop, after: 0 }))
        );
        assert_eq!(
            parse_fault_spec("delay:2:150"),
            Ok(Some(FaultSpec {
                action: FaultAction::Delay(Duration::from_millis(150)),
                after: 2
            }))
        );
        assert_eq!(
            parse_fault_spec("truncate:7"),
            Ok(Some(FaultSpec { action: FaultAction::Truncate, after: 7 }))
        );
        assert_eq!(
            parse_fault_spec("corrupt:4"),
            Ok(Some(FaultSpec { action: FaultAction::Corrupt, after: 4 }))
        );
        assert_eq!(
            parse_fault_spec("stale:2"),
            Ok(Some(FaultSpec { action: FaultAction::Stale, after: 2 }))
        );
        for bad in [
            "kill", "kill:", "kill:x", "drop:1:2", "delay:1", "delay:1:", "explode:1", "kill:3:",
            "corrupt", "corrupt:1:2", "stale", "stale:x",
        ] {
            assert!(parse_fault_spec(bad).is_err(), "'{bad}' must be rejected: a chaos leg \
                 silently running faultless would be green CI lying");
        }
    }

    /// The backoff schedule over an injected clock: no sleeping, fully
    /// deterministic for a fixed seed.
    #[test]
    fn backoff_doubles_within_jitter_bounds_and_honors_the_deadline() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let deadline = Duration::from_secs(100);
        let mut backoff = Backoff::new(base, max, deadline, 42);
        let mut nominal = base;
        // Attempt k's delay is jittered to 50–100% of the nominal,
        // which doubles up to `max` and then stays there.
        for attempt in 0..8 {
            let d = backoff.next_delay(Duration::ZERO).expect("deadline far away");
            assert!(
                d >= nominal.mul_f64(0.5) && d <= nominal,
                "attempt {attempt}: delay {d:?} outside [50%, 100%] of nominal {nominal:?}"
            );
            nominal = (nominal * 2).min(max);
        }
        // Same seed ⇒ same schedule, different seed ⇒ (almost surely)
        // a different one: the jitter decorrelates a worker herd.
        let delays = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, max, deadline, seed);
            (0..6).map(|_| b.next_delay(Duration::ZERO).unwrap()).collect()
        };
        assert_eq!(delays(7), delays(7), "fixed seed ⇒ deterministic schedule");
        assert_ne!(delays(7), delays(8), "different seeds ⇒ decorrelated schedules");
    }

    #[test]
    fn backoff_clips_to_the_deadline_then_expires() {
        let mut backoff = Backoff::new(
            Duration::from_millis(100),
            Duration::from_millis(100),
            Duration::from_millis(250),
            1,
        );
        // 240 ms elapsed of a 250 ms budget: whatever the jitter says,
        // the issued delay never overshoots the remaining 10 ms.
        let d = backoff.next_delay(Duration::from_millis(240)).unwrap();
        assert!(d <= Duration::from_millis(10), "delay {d:?} overshoots the deadline");
        // At (or past) the deadline the schedule is exhausted.
        assert_eq!(backoff.next_delay(Duration::from_millis(250)), None);
        assert_eq!(backoff.next_delay(Duration::from_secs(1)), None);
    }

    /// Wire a faulty dialer to a plain accepted stream, without any
    /// `MWP_FAULT` env staging (the spec is passed explicitly).
    fn faulty_pair(spec: FaultSpec) -> (Box<dyn FrameStream>, Box<dyn FrameStream>) {
        let listener = TransportListener::bind(TransportMode::Tcp).unwrap();
        let endpoint = listener.endpoint();
        let dialer = connect_faulty(&endpoint, Some(spec)).unwrap();
        let accepted = listener.accept().unwrap();
        (dialer, accepted)
    }

    #[test]
    fn drop_fault_goes_mute_after_n_frames_but_heartbeats_never_count() {
        let (mut faulty, mut peer) =
            faulty_pair(FaultSpec { action: FaultAction::Drop, after: 2 });
        // A heartbeat before the trigger must not advance the count —
        // its timing is wall-clock-driven and would make the fault
        // frame nondeterministic.
        faulty.send_frame(&Frame::heartbeat()).unwrap();
        faulty.send_frame(&frame(FrameKind::BlockA, 0, 0, &[1u8; 8])).unwrap();
        faulty.send_frame(&frame(FrameKind::BlockA, 1, 0, &[2u8; 8])).unwrap();
        // Third data frame: the drop fires — the send "succeeds" (a
        // mute worker doesn't know it is mute) but nothing hits the wire.
        faulty.send_frame(&frame(FrameKind::BlockA, 2, 0, &[3u8; 8])).unwrap();
        assert_eq!(
            peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.kind,
            FrameKind::Heartbeat
        );
        for i in 0..2 {
            let f = peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap();
            assert_eq!(f.tag.i, i, "pre-trigger data frames pass unharmed");
        }
        // The peer sees a healthy socket that has simply gone silent:
        // only a read deadline can surface this.
        peer.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        assert!(peer.recv_frame_capped(MAX_WIRE_LEN).is_err(), "silence, not a frame or EOF");
    }

    #[test]
    fn delay_fault_stalls_every_frame_past_the_trigger() {
        let stall = Duration::from_millis(120);
        let (mut faulty, mut peer) =
            faulty_pair(FaultSpec { action: FaultAction::Delay(stall), after: 1 });
        let t0 = std::time::Instant::now();
        faulty.send_frame(&frame(FrameKind::BlockB, 0, 0, &[0u8; 4])).unwrap();
        assert!(t0.elapsed() < stall, "pre-trigger frame goes out promptly");
        let t1 = std::time::Instant::now();
        faulty.send_frame(&frame(FrameKind::BlockB, 1, 0, &[0u8; 4])).unwrap();
        assert!(t1.elapsed() >= stall, "post-trigger frame is wedged for the delay");
        // Both frames do arrive — a wedged worker is slow, not gone.
        for i in 0..2 {
            assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.i, i);
        }
    }

    #[test]
    fn corrupt_fault_flips_one_bit_the_checksum_catches_and_the_stream_survives() {
        let (mut faulty, mut peer) =
            faulty_pair(FaultSpec { action: FaultAction::Corrupt, after: 1 });
        faulty.send_frame(&frame(FrameKind::BlockA, 0, 0, &[6u8; 32])).unwrap();
        // The trigger frame: its wire image goes out with one payload
        // bit flipped under a CRC computed over the clean bytes. The
        // sender sees a successful write — a corrupting NIC does not
        // report itself.
        faulty.send_frame(&frame(FrameKind::BlockA, 1, 0, &[6u8; 32])).unwrap();
        faulty.send_frame(&frame(FrameKind::BlockA, 2, 0, &[6u8; 32])).unwrap();
        assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.i, 0);
        let err = peer.recv_frame_capped(MAX_WIRE_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
        // The fault fires once: the frame after the corrupted one is
        // clean, and because the corrupted image had an honest length
        // prefix the stream never desyncs. (In production the pump
        // thread exits on the error and the link is marked dead — the
        // frame-level recovery here just proves the blast radius is one
        // frame.)
        assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.i, 2);
    }

    #[test]
    fn stale_fault_replays_a_previous_generation_frame_verbatim() {
        let (mut faulty, mut peer) =
            faulty_pair(FaultSpec { action: FaultAction::Stale, after: 2 });
        let block =
            |i: usize, run: u32| Frame::new_in_run(Tag::new(FrameKind::CResult, i, 0), run, Bytes::from(vec![i as u8; 16]));
        // Run 1's frame is captured; run 2's first frame promotes it to
        // replay material; run 2's second frame trips the trigger, so
        // the run-1 image is replayed ahead of it — checksum intact,
        // generation stale.
        faulty.send_frame(&block(10, 1)).unwrap();
        faulty.send_frame(&block(20, 2)).unwrap();
        faulty.send_frame(&block(21, 2)).unwrap();
        let received: Vec<Frame> = (0..4)
            .map(|_| peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap())
            .collect();
        assert_eq!(received[0], block(10, 1));
        assert_eq!(received[1], block(20, 2));
        assert_eq!(received[2], block(10, 1), "the stale replay rides between live frames");
        assert_eq!(received[3], block(21, 2));
        // Heartbeats and run-0 control frames are never captured, and
        // the replay fires exactly once.
        faulty.send_frame(&Frame::heartbeat()).unwrap();
        faulty.send_frame(&block(22, 2)).unwrap();
        assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.kind, FrameKind::Heartbeat);
        assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap(), block(22, 2));
    }

    #[test]
    fn truncate_fault_tears_a_frame_mid_write_and_poisons_the_stream() {
        let (mut faulty, mut peer) =
            faulty_pair(FaultSpec { action: FaultAction::Truncate, after: 1 });
        faulty.send_frame(&frame(FrameKind::BlockC, 0, 0, &[9u8; 64])).unwrap();
        // The trigger frame: an honest length prefix, half the bytes,
        // then the write "fails" — and every later send is poisoned.
        let torn = faulty.send_frame(&frame(FrameKind::BlockC, 1, 0, &[9u8; 64]));
        assert!(torn.is_err(), "the torn write surfaces as an error on the faulty side");
        assert!(
            faulty.send_frame(&Frame::heartbeat()).is_err(),
            "a torn stream stays broken — even heartbeats fail"
        );
        assert_eq!(peer.recv_frame_capped(MAX_WIRE_LEN).unwrap().unwrap().tag.i, 0);
        // The peer is now mid-frame on a stream that will never finish
        // it: dropping the faulty side turns that into corruption
        // (unexpected EOF), never a clean end-of-stream.
        drop(faulty);
        assert!(
            peer.recv_frame_capped(MAX_WIRE_LEN).is_err(),
            "a torn frame must read as corruption, not clean EOF"
        );
    }
}

//! Run-lifecycle sentinels — the one place the control-plane magic
//! values live.
//!
//! Run boundaries ride on [`FrameKind::Control`] frames with a sentinel
//! in `tag.i`; the handshake (in [`crate::transport`]) uses the same
//! namespace for its own control traffic. Because every sentinel shares
//! the `tag.i` space of `Control` frames, the full allocation is
//! documented — and uniqueness-tested — here:
//!
//! | `tag.i` value   | meaning                  | defined in            |
//! |-----------------|--------------------------|-----------------------|
//! | `u32::MAX`      | `RUN_END`                | this module           |
//! | `u32::MAX - 1`  | `RUN_BEGIN`              | this module           |
//! | `u32::MAX - 2`  | `HELLO`                  | `transport`           |
//! | `u32::MAX - 3`  | `WELCOME`                | `transport`           |
//! | `u32::MAX - 4`  | `CHALLENGE`              | `transport`           |
//! | `u32::MAX - 5`  | `REJECT`                 | `transport`           |
//! | `u32::MAX - 6`  | `RUN_ABORT`              | this module           |
//!
//! (`transport::CLAIM_ANY` is also `u32::MAX`, but it lives in the
//! *hello payload's claimed-slot field*, never in `tag.i`, so it cannot
//! collide with `RUN_END`.)
//!
//! The lifecycle frames themselves are built by the constructors below so
//! call sites never assemble a `Control` tag by hand. Their `run` field
//! is left at 0 — the link layer stamps every outbound frame with the
//! sending side's current run generation, so a `RUN_BEGIN` arrives
//! carrying the generation it opens (that is how workers learn it).

use crate::frame::{Frame, FrameKind, Tag};
use bytes::Bytes;

/// `tag.i` sentinel on a [`FrameKind::Control`] frame announcing the
/// start of a run; `tag.j` carries the run parameter (`q` for the matrix
/// runtimes, the packed LU parameter word for LU), and the frame's `run`
/// field carries the new run generation.
pub const RUN_BEGIN: u32 = u32::MAX - 1;

/// `tag.i` sentinel announcing the orderly end of a run: the master has
/// collected everything it needs and the worker should park.
pub const RUN_END: u32 = u32::MAX;

/// `tag.i` sentinel aborting a run cooperatively: the master has given
/// up on this run (deadline breach); the worker drains whatever data
/// frames were already queued ahead of the abort (one-port FIFO order
/// guarantees the abort is the last frame of the run), keeps its scratch
/// intact, and parks — ready for the next `RUN_BEGIN` on the same
/// session.
pub const RUN_ABORT: u32 = u32::MAX - 6;

/// Control frame opening a run; `param` is the runtime-specific run
/// parameter delivered in `tag.j`.
pub fn run_begin_frame(param: u32) -> Frame {
    Frame::new(
        Tag { kind: FrameKind::Control, i: RUN_BEGIN, j: param },
        Bytes::new(),
    )
}

/// Control frame closing a run in the orderly way.
pub fn run_end_frame() -> Frame {
    Frame::new(
        Tag { kind: FrameKind::Control, i: RUN_END, j: 0 },
        Bytes::new(),
    )
}

/// Control frame aborting the current run.
pub fn run_abort_frame() -> Frame {
    Frame::new(
        Tag { kind: FrameKind::Control, i: RUN_ABORT, j: 0 },
        Bytes::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{CHALLENGE, HELLO, REJECT, WELCOME};

    /// Every sentinel sharing the `Control` `tag.i` namespace must be
    /// distinct — the table in the module docs, enforced.
    #[test]
    fn control_sentinels_are_unique() {
        let all = [RUN_BEGIN, RUN_END, RUN_ABORT, HELLO, WELCOME, CHALLENGE, REJECT];
        for (a, &x) in all.iter().enumerate() {
            for (b, &y) in all.iter().enumerate() {
                if a != b {
                    assert_ne!(x, y, "sentinel collision at indices {a}/{b}");
                }
            }
        }
    }

    /// The constructors produce the exact tags the dispatch loops match
    /// on, with empty payloads and an unstamped (generation-0) run field.
    #[test]
    fn constructors_build_the_documented_tags() {
        let begin = run_begin_frame(42);
        assert_eq!(begin.tag.kind, FrameKind::Control);
        assert_eq!(begin.tag.i, RUN_BEGIN);
        assert_eq!(begin.tag.j, 42);
        assert_eq!(begin.run, 0);
        assert!(begin.payload.is_empty());

        let end = run_end_frame();
        assert_eq!(end.tag.kind, FrameKind::Control);
        assert_eq!(end.tag.i, RUN_END);
        assert_eq!(end.run, 0);
        assert!(end.payload.is_empty());

        let abort = run_abort_frame();
        assert_eq!(abort.tag.kind, FrameKind::Control);
        assert_eq!(abort.tag.i, RUN_ABORT);
        assert_eq!(abort.run, 0);
        assert!(abort.payload.is_empty());
    }

    /// Lifecycle frames are control traffic, never metered as blocks.
    #[test]
    fn lifecycle_frames_are_not_block_frames() {
        for f in [run_begin_frame(1), run_end_frame(), run_abort_frame()] {
            assert!(!f.tag.kind.is_block());
        }
    }
}

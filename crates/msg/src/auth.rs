//! Enrollment authentication: SHA-256, HMAC-SHA256, and the fleet
//! secret.
//!
//! The enrollment handshake (see [`crate::transport`]) authenticates
//! both ends of a new connection with an HMAC challenge/response over a
//! **shared fleet secret** (`MWP_FLEET_SECRET`): the master opens with a
//! challenge nonce, the worker's hello carries an HMAC over that nonce
//! and every field it asserts, and the master's welcome answers with an
//! HMAC over the worker's nonce — so neither a replayed hello nor a
//! spoofed master survives the handshake.
//!
//! The primitives are implemented here directly (FIPS 180-4 SHA-256,
//! RFC 2104 HMAC) because the workspace builds fully offline against
//! local shims — there is no crypto crate to depend on. They are used
//! for *authentication tags on a trusted-code path*, not for bulk or
//! adversarial-performance cryptography, which keeps a straightforward
//! implementation appropriate; the test vectors below pin it to the
//! published standards.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4). Feed bytes with [`Sha256::update`],
/// close with [`Sha256::finish`].
pub struct Sha256 {
    state: [u32; 8],
    /// Unprocessed tail of the input (always < 64 bytes).
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// The initial hash state (FIPS 180-4 §5.3.3).
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if rest.is_empty() {
                // All of `data` was absorbed into the buffer; falling
                // through would clobber `buf_len` with `rest.len()`.
                return self;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
        self
    }

    /// Close the hash: append the `1` bit, zero padding, and the 64-bit
    /// message length, and return the digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0, "padding ends on a block boundary");
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 (RFC 2104): `H((K' ^ opad) || H((K' ^ ipad) || msg))`,
/// where `msg` is the concatenation of `parts` — callers pass the MAC
/// input as separate length-delimited fields without concatenating.
pub fn hmac_sha256(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time tag comparison: the time never depends on *where* the
/// tags differ, so a byte-at-a-time forgery can't be walked in.
pub fn macs_equal(a: &[u8; 32], b: &[u8; 32]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// The fleet's shared enrollment secret: `MWP_FLEET_SECRET`, re-read on
/// every call (like `MWP_HANDSHAKE_TIMEOUT_MS`, so tests can stage
/// secrets within one process). Unset or empty means **no secret**: the
/// handshake still runs its MACs (the wire format is uniform) but keys
/// them with the empty string, which any peer can compute — set a
/// secret on every fleet member before exposing a listener beyond
/// loopback.
pub fn fleet_secret() -> Vec<u8> {
    std::env::var("MWP_FLEET_SECRET").map(String::into_bytes).unwrap_or_default()
}

/// A process-unique 16-byte handshake nonce. Uniqueness — not secrecy —
/// is what the handshake needs from it (the MACs rest on the fleet
/// secret): wall clock, pid, a per-process counter, and an ASLR-shifted
/// address are hashed so two fleet members, or two enrollments of one
/// member, never reuse a challenge.
pub fn fresh_nonce() -> [u8; 16] {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack_probe = 0u8;
    let mut h = Sha256::new();
    h.update(&now.to_le_bytes())
        .update(&u64::from(std::process::id()).to_le_bytes())
        .update(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes())
        .update(&(&stack_probe as *const u8 as usize as u64).to_le_bytes());
    let digest = h.finish();
    digest[..16].try_into().expect("32-byte digest has a 16-byte prefix")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST example vectors.
    #[test]
    fn sha256_matches_the_published_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's: exercises many blocks through the buffered path.
        let mut h = Sha256::new();
        for _ in 0..10_000 {
            h.update(&[b'a'; 100]);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    /// Split updates must hash identically to one-shot input, at every
    /// split point around the 64-byte block boundary.
    #[test]
    fn incremental_updates_match_one_shot() {
        let data: Vec<u8> = (0..200u8).collect();
        let expect = sha256(&data);
        for split in [0, 1, 63, 64, 65, 127, 128, 199] {
            let mut h = Sha256::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), expect, "split at {split}");
        }
    }

    /// RFC 4231 HMAC-SHA256 test cases 1, 2, 6 (short key, "Jefe", and
    /// a key longer than one block, which takes the hashed-key path).
    #[test]
    fn hmac_sha256_matches_rfc_4231() {
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], &[b"Hi There"])),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", &[b"what do ya want ", b"for nothing?"])),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 131], &[b"Test Using Larger Than Block-Size Key - Hash Key First"])),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn multi_part_mac_equals_concatenated_mac() {
        let key = b"fleet-secret";
        let whole = hmac_sha256(key, &[b"abcdef"]);
        let parts = hmac_sha256(key, &[b"ab", b"", b"cd", b"ef"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn mac_comparison_detects_any_difference() {
        let a = hmac_sha256(b"k", &[b"m"]);
        assert!(macs_equal(&a, &a.clone()));
        for flip in [0, 15, 31] {
            let mut b = a;
            b[flip] ^= 1;
            assert!(!macs_equal(&a, &b), "flip at byte {flip}");
        }
    }

    #[test]
    fn nonces_do_not_repeat_within_a_process() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(fresh_nonce()), "nonce repeated");
        }
    }
}

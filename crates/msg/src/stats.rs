//! Lock-free per-link statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one master↔worker link. All methods are thread-safe;
/// cloning shares the same counters.
#[derive(Clone, Default)]
pub struct LinkStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    frames_to_worker: AtomicU64,
    frames_to_master: AtomicU64,
    bytes_to_worker: AtomicU64,
    bytes_to_master: AtomicU64,
    blocks_to_worker: AtomicU64,
    blocks_to_master: AtomicU64,
    /// Nanoseconds the master port was held for this link's transfers.
    port_busy_nanos: AtomicU64,
    /// Inbound data frames rejected because their run generation did not
    /// match the receiver's current run (never delivered, never metered).
    stale_rejected: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSnapshot {
    /// Frames master → worker.
    pub frames_to_worker: u64,
    /// Frames worker → master.
    pub frames_to_master: u64,
    /// Payload bytes master → worker.
    pub bytes_to_worker: u64,
    /// Payload bytes worker → master.
    pub bytes_to_master: u64,
    /// Matrix blocks master → worker.
    pub blocks_to_worker: u64,
    /// Matrix blocks worker → master.
    pub blocks_to_master: u64,
    /// Nanoseconds the master port was held by this link.
    pub port_busy_nanos: u64,
    /// Data frames structurally rejected for carrying a stale run
    /// generation.
    pub stale_rejected: u64,
}

impl LinkSnapshot {
    /// Total matrix blocks both directions.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_to_worker + self.blocks_to_master
    }
}

impl LinkStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a master → worker frame carrying `blocks` matrix blocks
    /// (0 for control traffic; multi-block run frames count every block).
    pub fn record_to_worker(&self, bytes: usize, blocks: u64) {
        self.inner.frames_to_worker.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_to_worker.fetch_add(bytes as u64, Ordering::Relaxed);
        if blocks > 0 {
            self.inner.blocks_to_worker.fetch_add(blocks, Ordering::Relaxed);
        }
    }

    /// Record a worker → master frame carrying `blocks` matrix blocks.
    pub fn record_to_master(&self, bytes: usize, blocks: u64) {
        self.inner.frames_to_master.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_to_master.fetch_add(bytes as u64, Ordering::Relaxed);
        if blocks > 0 {
            self.inner.blocks_to_master.fetch_add(blocks, Ordering::Relaxed);
        }
    }

    /// Add port-hold time for this link.
    pub fn record_port_busy(&self, nanos: u64) {
        self.inner.port_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one inbound data frame dropped by the run-generation check.
    /// Rejection happens *before* metering, so the block/byte counters —
    /// which the communication-volume assertions compare against the
    /// paper's formulas — never see the stale frame.
    pub fn record_stale_rejected(&self) {
        self.inner.stale_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            frames_to_worker: self.inner.frames_to_worker.load(Ordering::Relaxed),
            frames_to_master: self.inner.frames_to_master.load(Ordering::Relaxed),
            bytes_to_worker: self.inner.bytes_to_worker.load(Ordering::Relaxed),
            bytes_to_master: self.inner.bytes_to_master.load(Ordering::Relaxed),
            blocks_to_worker: self.inner.blocks_to_worker.load(Ordering::Relaxed),
            blocks_to_master: self.inner.blocks_to_master.load(Ordering::Relaxed),
            port_busy_nanos: self.inner.port_busy_nanos.load(Ordering::Relaxed),
            stale_rejected: self.inner.stale_rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let s = LinkStats::new();
        s.record_to_worker(100, 1);
        s.record_to_worker(9, 0); // control frame: not a block
        s.record_to_master(50, 1);
        s.record_port_busy(42);
        s.record_stale_rejected();
        let snap = s.snapshot();
        assert_eq!(snap.frames_to_worker, 2);
        assert_eq!(snap.bytes_to_worker, 109);
        assert_eq!(snap.blocks_to_worker, 1);
        assert_eq!(snap.frames_to_master, 1);
        assert_eq!(snap.blocks_to_master, 1);
        assert_eq!(snap.total_blocks(), 2);
        assert_eq!(snap.port_busy_nanos, 42);
        assert_eq!(snap.stale_rejected, 1);
    }

    #[test]
    fn multi_block_frames_count_every_block() {
        let s = LinkStats::new();
        s.record_to_worker(6 * 128, 6); // one frame, six-block run
        s.record_to_master(2 * 128, 2);
        let snap = s.snapshot();
        assert_eq!(snap.frames_to_worker, 1);
        assert_eq!(snap.blocks_to_worker, 6);
        assert_eq!(snap.frames_to_master, 1);
        assert_eq!(snap.blocks_to_master, 2);
        assert_eq!(snap.total_blocks(), 8);
    }

    #[test]
    fn clone_shares_counters() {
        let s = LinkStats::new();
        let t = s.clone();
        t.record_to_worker(1, 1);
        assert_eq!(s.snapshot().frames_to_worker, 1);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = LinkStats::new();
        let mut handles = vec![];
        for _ in 0..4 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_to_worker(8, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().frames_to_worker, 4000);
    }
}

//! # mwp-msg — threaded message layer with a one-port master arbiter
//!
//! The paper's experiments run over MPI on a cluster whose NICs serialize
//! concurrent transfers ("asynchronous MPI sends get serialized as soon as
//! message sizes exceed a hundred kilobytes", Section 2.2). Rust MPI
//! bindings being immature, this crate is the **custom message layer** that
//! replaces MPI for the runtime experiments:
//!
//! * [`Frame`] — a typed, length-delimited message (block payloads travel
//!   as [`bytes::Bytes`], so forwarding never copies coefficients),
//! * [`OnePort`] — a FIFO arbiter enforcing the paper's one-port model:
//!   at most one master-side transfer (send *or* receive) in flight,
//! * [`Link`] — a bandwidth-paced channel pair between the master and one
//!   worker; pacing holds the port for `blocks · c_i · time_scale` wall
//!   seconds (`time_scale = 0` disables pacing for fast tests while
//!   preserving ordering semantics),
//! * [`StarNetwork`] — builds the full star from a
//!   [`mwp_platform::Platform`] and hands out master/worker endpoints,
//! * [`LinkStats`] — lock-free per-link counters (blocks, bytes, busy
//!   time) that the experiment harness reads after a run,
//! * [`BufferPool`] — recycling payload buffers: result frames are built
//!   in pooled storage that returns to the sender once the receiver drops
//!   the last view, making steady-state traffic allocation-free,
//! * [`Session`] — a persistent worker pool over the star: worker threads
//!   spawn once, park on blocking receives between `RUN_BEGIN`/`RUN_END`
//!   delimited runs, and are shared process-wide through
//!   [`session::SessionPool`] when `MWP_RUNTIME=session`,
//! * [`sched`] — the multi-job serving tier (`MWP_SCHED=on`): a
//!   [`sched::JobScheduler`] queues jobs from many caller threads and
//!   dispatches each as its own interleaved **run generation** on one
//!   shared session (`Session::begin_job`), with the master
//!   demultiplexing replies per generation instead of holding the
//!   run-exclusion lock, plus the small-job batching hooks
//!   (`MWP_BATCH`) and the max-inflight knob (`MWP_INFLIGHT`),
//! * [`transport`] — the socket backend (`MWP_TRANSPORT=tcp|uds`):
//!   length-prefixed frames over TCP or Unix-domain sockets, so master
//!   and workers can run as separate processes or hosts — the one-port
//!   arbiter, pacing, and statistics stay on the master side, and worker
//!   programs are transport-blind. Enrollment is authenticated: an
//!   HMAC challenge/response over the shared fleet secret
//!   ([`auth::fleet_secret`]) with protocol-version negotiation and
//!   membership-epoch checks, so only fleet members of the current
//!   generation get past the master's front door.
//!
//! Worker-side receives do **not** take the port — only the master is
//! port-limited, exactly as in the model (each worker has its own link).

pub mod auth;
pub mod checksum;
pub mod endpoint;
pub mod frame;
pub mod lifecycle;
pub mod link;
pub mod net;
pub mod pool;
pub mod port;
pub mod sched;
pub mod session;
pub mod stats;
pub mod transport;

pub use endpoint::{MasterEndpoint, WorkerEndpoint};
pub use frame::{Frame, FrameKind, Tag};
pub use link::Link;
pub use net::StarNetwork;
pub use pool::BufferPool;
pub use port::OnePort;
pub use session::Session;
pub use stats::LinkStats;
pub use transport::{TransportListener, TransportMode};

//! Observability integration: invariants of the **measured** runtime
//! trace, over real threaded-runtime runs.
//!
//! The span recorder promises that real timelines obey the same laws the
//! simulator's traces do — that is what makes the sim-vs-real replay
//! harness (`replay_diff`) a fair comparison. These tests capture real
//! runs with [`mwp_trace::record::Capture`] and check:
//!
//! * per-resource mutual exclusion (the one-port property, measured),
//! * monotonic span timestamps,
//! * run-lifecycle bracketing (every `RUN_BEGIN` closed by a `RUN_END`
//!   or `RUN_ABORT` of the same generation),
//! * conservation of transferred volume (port span bytes sum to exactly
//!   `blocks_moved × 8q²`),
//! * Chrome-trace export structure and lossless round-trip through the
//!   sim-side reader,
//! * consistency between the scheduler's [`JobReport`] metering and the
//!   run spans of the same generation.
//!
//! The compute kernel under the captured runs follows `MWP_KERNEL`, so
//! the CI matrix exercises these invariants under both kernels; the
//! transport follows `MWP_TRANSPORT` the same way.
//!
//! Captures are process-global, so every capturing test serializes on
//! [`CAPTURE_LOCK`].

use mwp_blockmat::fill::random_matrix;
use mwp_core::serving::{JobSpec, MatrixServer};
use mwp_core::session::RuntimeSession;
use mwp_platform::Platform;
use mwp_trace::chrome;
use mwp_trace::record::Capture;
use mwp_trace::{Activity, ActivityKind, Resource, Trace};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

fn capture_lock() -> MutexGuard<'static, ()> {
    // A proptest failure in one test must not poison every other test.
    CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One real HoLM run on a fresh pooled session, captured: returns the
/// measured trace and the runtime's own `blocks_moved` count.
fn captured_holm(
    p: usize,
    r: usize,
    s: usize,
    t: usize,
    q: usize,
) -> (Trace, u64) {
    let _serial = capture_lock();
    let pf = Platform::homogeneous(p, 2.0, 1.0, 60).expect("valid platform");
    let a = random_matrix(r, s, q, 1);
    let b = random_matrix(s, t, q, 2);
    let c0 = random_matrix(r, t, q, 3);
    let capture = Capture::begin();
    let session = RuntimeSession::new(&pf, 0.0);
    let outcome = session.run_holm(&a, &b, c0).expect("run succeeds");
    let trace = capture.end();
    session.shutdown();
    (trace, outcome.blocks_moved)
}

/// Transfer volume through the master port: the sum of `bytes` over its
/// send/receive spans (control frames carry `bytes = 0` by contract).
fn port_bytes(trace: &Trace) -> u64 {
    trace
        .activities
        .iter()
        .filter(|a| {
            a.resource == Resource::MasterPort
                && matches!(a.kind, ActivityKind::Send | ActivityKind::Recv)
        })
        .map(|a| a.bytes)
        .sum()
}

/// Per-generation `(RUN_BEGIN count, RUN_END/RUN_ABORT count)`.
fn run_brackets(trace: &Trace) -> HashMap<u32, (usize, usize)> {
    let mut brackets: HashMap<u32, (usize, usize)> = HashMap::new();
    for a in &trace.activities {
        if a.kind != ActivityKind::Run {
            continue;
        }
        let slot = brackets.entry(a.run).or_default();
        match &*a.label {
            "RUN_BEGIN" => slot.0 += 1,
            "RUN_END" | "RUN_ABORT" => slot.1 += 1,
            other => panic!("unexpected run marker label {other:?}"),
        }
    }
    brackets
}

fn check_invariants(trace: &Trace, moved: u64, q: usize) -> Result<(), TestCaseError> {
    // Measured one-port property: no two occupying spans overlap on any
    // resource (Wait and Run markers are annotations, exempt by design).
    prop_assert!(
        trace.check_no_overlap().is_ok(),
        "measured trace violates per-resource exclusion: {:?}",
        trace.check_no_overlap()
    );
    // Monotonic timestamps.
    for a in &trace.activities {
        prop_assert!(
            a.end >= a.start,
            "span {:?} ends before it starts",
            a.label
        );
    }
    // Every RUN_BEGIN is bracketed by exactly one RUN_END/RUN_ABORT of
    // the same generation, and no close appears without a begin.
    for (run, (begins, closes)) in run_brackets(trace) {
        prop_assert_eq!(
            begins,
            closes,
            "generation {} has {} RUN_BEGIN but {} closes",
            run,
            begins,
            closes
        );
    }
    // Conservation of volume: what the spans say crossed the port is
    // exactly what the runtime accounted as moved.
    prop_assert_eq!(
        port_bytes(trace),
        moved * (8 * q * q) as u64,
        "port span bytes disagree with blocks_moved"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized platform/problem shapes: every captured real run obeys
    /// the trace invariants.
    #[test]
    fn measured_trace_invariants(
        p in 1usize..4,
        r in 1usize..5,
        s in 1usize..5,
        t in 1usize..5,
        q in 4usize..10,
    ) {
        let (trace, moved) = captured_holm(p, r, s, t, q);
        prop_assert!(moved > 0, "run moved no blocks");
        check_invariants(&trace, moved, q)?;
    }
}

/// The golden structural contract of the Chrome-trace export for a fixed
/// small HoLM run: parses as JSON, carries the pid/tid/ph/ts/dur fields
/// Perfetto requires plus thread-name metadata, and round-trips through
/// the sim-side reader without losing a span.
#[test]
fn chrome_export_golden_structure() {
    let (trace, moved) = captured_holm(2, 2, 2, 3, 5);
    assert!(moved > 0);
    let json = chrome::to_json(&trace);

    let doc = chrome::parse_json(&json).expect("export is valid JSON");
    let events = match &doc {
        chrome::Json::Arr(events) => events,
        other => panic!("export is not a JSON array: {other:?}"),
    };
    assert!(!events.is_empty());

    let mut complete = 0usize;
    let mut names = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("every event has ph");
        assert_eq!(ev.get("pid").and_then(chrome::Json::as_f64), Some(1.0));
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        match ph {
            "X" => {
                complete += 1;
                assert!(ev.get("tid").and_then(chrome::Json::as_f64).is_some());
                assert!(ev.get("ts").and_then(chrome::Json::as_f64).is_some());
                assert!(ev.get("dur").and_then(chrome::Json::as_f64).is_some());
                let args = ev.get("args").expect("X events carry args");
                assert!(args.get("start_s").and_then(chrome::Json::as_f64).is_some());
                assert!(args.get("end_s").and_then(chrome::Json::as_f64).is_some());
            }
            "M" => names += 1,
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, trace.activities.len());
    assert!(names >= 2, "expected process + thread name metadata");

    // Round-trip through the reader: args carry exact f64 seconds, so
    // the rebuilt trace is bit-identical.
    let back = chrome::from_json(&json).expect("reader accepts own export");
    let sort = |mut v: Vec<Activity>| {
        v.sort_by(|a, b| {
            a.start.cmp(&b.start).then_with(|| format!("{:?}", a.resource).cmp(&format!("{:?}", b.resource)))
        });
        v
    };
    assert_eq!(sort(back.activities), sort(trace.activities.clone()));
}

/// Scheduler metering and trace agree: the served job's run generation
/// appears as a bracketed run span no longer than the reported service
/// time, and the port spans of that generation carry exactly the bytes
/// the report billed as moved.
#[test]
fn job_report_consistent_with_spans() {
    let _serial = capture_lock();
    let pf = Platform::homogeneous(2, 2.0, 1.0, 60).expect("valid platform");
    let q = 5;
    let spec = JobSpec {
        a: random_matrix(2, 2, q, 7),
        b: random_matrix(2, 3, q, 8),
        c: random_matrix(2, 3, q, 9),
        select: true,
    };
    let capture = Capture::begin();
    let server = MatrixServer::with_options(RuntimeSession::new(&pf, 0.0), 1, false);
    let done = server.run(spec);
    let trace = capture.end();
    server.shutdown();
    done.result.expect("job succeeds");
    let report = done.report;
    assert!(report.run_gen > 0);

    let closes: Vec<&Activity> = trace
        .activities
        .iter()
        .filter(|a| {
            a.kind == ActivityKind::Run && a.run == report.run_gen && &*a.label != "RUN_BEGIN"
        })
        .collect();
    assert_eq!(closes.len(), 1, "one close marker for the serving run");
    assert_eq!(&*closes[0].label, "RUN_END");

    // The run span lies inside the service window (pickup → result
    // ready); small slack absorbs the separate clock reads.
    let span = closes[0].duration();
    assert!(
        span <= report.service.as_secs_f64() + 1e-3,
        "run span {span}s exceeds reported service {:?}",
        report.service
    );

    let gen_bytes: u64 = trace
        .activities
        .iter()
        .filter(|a| {
            a.resource == Resource::MasterPort
                && a.run == report.run_gen
                && matches!(a.kind, ActivityKind::Send | ActivityKind::Recv)
        })
        .map(|a| a.bytes)
        .sum();
    assert_eq!(gen_bytes, report.blocks_moved * (8 * q * q) as u64);
}

//! Cross-crate validation: the analytic cost model, the discrete-event
//! simulator, and the threaded runtime must tell the same story.

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::random_matrix;

/// On a comm-bound homogeneous platform with all workers enrolled, the
/// ORROML schedule keeps the port saturated: the simulated makespan must
/// equal total-blocks × c (the analytic port bound) almost exactly.
#[test]
fn simulator_matches_port_bound_when_comm_bound() {
    let (c, w) = (4.0, 0.25); // strongly comm-bound
    let platform = Platform::homogeneous(8, c, w, 60).unwrap(); // µ = 6
    let problem = Partition::from_blocks(12, 12, 24, 80);
    let report = simulate(AlgorithmKind::ORROML, &platform, &problem).unwrap();

    // Total traffic: C out+back plus per-chunk A/B streams.
    let mu = 6u64;
    let chunks = (12 / 6) * (12 / 6);
    let blocks = 2 * problem.c_blocks() + chunks * problem.t as u64 * 2 * mu;
    assert_eq!(report.blocks_sent + report.blocks_received, blocks);
    let port_bound = blocks as f64 * c;
    let slack = report.makespan.value() / port_bound;
    assert!(
        (1.0..1.02).contains(&slack),
        "makespan {} vs port bound {port_bound} (slack {slack})",
        report.makespan.value()
    );
}

/// The simulator's communication volume and the threaded runtime's block
/// counters must agree exactly for the same algorithm and configuration.
#[test]
fn runtime_and_simulator_move_the_same_blocks() {
    let platform = Platform::homogeneous(3, 2.0, 1.0, 60).unwrap(); // µ = 6
    let q = 8;
    let (r, t, s) = (6, 5, 12);
    let problem = Partition::from_blocks(r, s, t, q);

    let sim_report = simulate(AlgorithmKind::ORROML, &platform, &problem).unwrap();
    let a = random_matrix(r, t, q, 1);
    let b = random_matrix(t, s, q, 2);
    let c0 = random_matrix(r, s, q, 3);
    let run = run_all_workers(&platform, &a, &b, c0, 0.0).unwrap();

    assert_eq!(
        run.blocks_moved,
        sim_report.blocks_sent + sim_report.blocks_received,
        "threaded runtime and simulator disagree on communication volume"
    );
}

/// Measured CCR from the simulator converges to the paper's formula
/// `2/t + 2/µ` as problems grow.
#[test]
fn measured_ccr_converges_to_formula() {
    let platform = Platform::homogeneous(1, 1.0, 1.0, 60).unwrap(); // µ = 6
    for t in [6usize, 24, 96] {
        let problem = Partition::from_blocks(6, 6, t, 80);
        let report = simulate(AlgorithmKind::ORROML, &platform, &problem).unwrap();
        let formula = bounds::ccr_max_reuse(6, t);
        let measured = report.measured_ccr();
        assert!(
            (measured - formula).abs() / formula < 0.02,
            "t = {t}: measured {measured} vs formula {formula}"
        );
    }
}

/// The Loomis–Whitney lower bound really is a lower bound for every
/// algorithm in the suite (in block terms, using each algorithm's actual
/// buffer budget).
#[test]
fn no_algorithm_beats_the_lower_bound() {
    let m = 140;
    let platform = Platform::homogeneous(4, 1.0, 1.0, m).unwrap();
    let problem = Partition::from_blocks(20, 20, 40, 80);
    let lower = bounds::lower_bound_loomis_whitney(m);
    for kind in AlgorithmKind::ALL {
        let report = simulate(kind, &platform, &problem).unwrap();
        let ccr = report.measured_ccr();
        assert!(
            ccr >= lower * 0.999,
            "{}: CCR {ccr} beats the lower bound {lower}",
            kind.name()
        );
    }
}

/// Steady-state LP bound dominates every simulated heterogeneous
/// execution (throughput-wise).
#[test]
fn steady_state_dominates_heterogeneous_runs() {
    use mwp_core::algorithms::heterogeneous::simulate_heterogeneous;
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .unwrap();
    let bound = steady_state(&platform).throughput;
    let problem = Partition::from_blocks(36, 72, 300, 80);
    for rule in [
        SelectionRule::Global,
        SelectionRule::Local,
        SelectionRule::TwoStepLookahead,
    ] {
        let report = simulate_heterogeneous(&platform, &problem, rule).unwrap();
        assert!(
            report.throughput() <= bound * 1.001,
            "{rule:?} exceeded the steady-state bound"
        );
    }
}

/// HoLM's enrolled-worker prediction agrees between the selection module
/// and the cost model's convenience method.
#[test]
fn selection_and_cost_model_agree_on_p() {
    let cm = CostModel::from_profile(80, &HardwareProfile::tennessee_2006());
    let m = cm.buffers_for_memory(512 * 1024 * 1024);
    let mu = MemoryLayout::MaxReuseOverlapped.mu(m);
    let params = WorkerParams::new(cm.c().value(), cm.w().value(), m);
    let sel = select_homogeneous(&params, 64, 1000, 1000);
    assert_eq!(sel.workers, cm.ideal_worker_count(mu));
    assert_eq!(sel.chunk_side, mu);
}

//! Prepacked-panel reuse cross-validation: every layer that packs a B
//! operand once and reuses it (kernel `PackedB`, `gemm_serial` /
//! `gemm_parallel`, the runtime workers' resident-B packs, the LU
//! worker's per-step horizontal-panel pack) must be **bit-identical** to
//! the per-call-pack path it replaced — same microkernel, same
//! per-element k-accumulation order, the pack being pure data movement.
//!
//! The CI matrix runs this file under `MWP_KERNEL=scalar` (the verbatim
//! row-major pack) and `MWP_RUNTIME=session` (prepacks recycled across
//! pooled runs) as well as the default AVX2 leg; `MWP_PACK=off` turns
//! every prepacked path back into the per-call path, which these
//! equivalences guarantee is indistinguishable in results.

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::{random_block, random_diagonally_dominant, random_matrix};
use mwp_blockmat::gemm::{gemm_parallel, gemm_serial};
use mwp_blockmat::kernel::{available, PackedB};
use mwp_blockmat::lu::{lu_blocked_in_place, Dense};
use mwp_blockmat::Block;
use mwp_lu::runtime::run_lu;

/// Block-level contract at tail sizes: one pack serving a stream of A
/// blocks produces exactly the bytes per-call packing produces, under
/// every kernel this CPU can run.
#[test]
fn prepacked_block_update_is_bit_identical_at_tail_sizes() {
    for kernel in available() {
        for q in [1usize, 3, 5, 7, 33, 80] {
            let b = random_block(q, 900 + q as u64);
            let mut packed = PackedB::new();
            b.pack_b_for(kernel, &mut packed);
            for round in 0..3 {
                let a = random_block(q, 910 + q as u64 + round);
                let mut c1 = random_block(q, 920 + q as u64 + round);
                let mut c2 = c1.clone();
                c1.gemm_acc_prepacked(kernel, &a, &packed);
                c2.gemm_acc_with(kernel, &a, &b);
                assert_eq!(
                    c1.as_slice(),
                    c2.as_slice(),
                    "kernel {}: prepacked diverges from per-call at q = {q}, round {round}",
                    kernel.name()
                );
            }
        }
    }
}

/// A recycled pack buffer crossing shapes (large → small with a tail
/// panel) behaves exactly like a fresh one at the whole-product level.
#[test]
fn pack_buffer_reuse_across_shapes_is_bit_identical() {
    for kernel in available() {
        let mut packed = PackedB::new();
        // Shrinking q sequence: every pack after the first reuses a
        // buffer whose tail held the previous, larger pack.
        for q in [80usize, 33, 7, 5, 3, 1] {
            let a = random_block(q, 930 + q as u64);
            let b = random_block(q, 940 + q as u64);
            let mut c_recycled = Block::zeros(q);
            let mut c_fresh = Block::zeros(q);
            b.pack_b_for(kernel, &mut packed);
            c_recycled.gemm_acc_prepacked(kernel, &a, &packed);
            let mut fresh = PackedB::new();
            b.pack_b_for(kernel, &mut fresh);
            c_fresh.gemm_acc_prepacked(kernel, &a, &fresh);
            assert_eq!(
                c_recycled.as_slice(),
                c_fresh.as_slice(),
                "kernel {}: recycled pack buffer diverges at q = {q}",
                kernel.name()
            );
        }
    }
}

/// The whole-matrix products (which pack each B block once per `(k, j)`)
/// against a hand-rolled per-call-pack triple loop in the historical
/// i → j → k order: bit-identical, tail block side.
#[test]
fn gemm_serial_and_parallel_match_per_call_triple_loop_bitwise() {
    let q = 33;
    let (r, t, s) = (4usize, 5usize, 3usize);
    let a = random_matrix(r, t, q, 951);
    let b = random_matrix(t, s, q, 952);
    let c0 = random_matrix(r, s, q, 953);

    // The PR 2 path: per-call packing inside every gemm_acc, i-outer.
    let kernel = mwp_blockmat::kernel::active();
    let mut per_call = c0.clone();
    for i in 0..r {
        for j in 0..s {
            let cij = per_call.block_mut(i, j);
            for k in 0..t {
                cij.gemm_acc_with(kernel, a.block(i, k), b.block(k, j));
            }
        }
    }

    let mut serial = c0.clone();
    gemm_serial(&mut serial, &a, &b);
    assert_eq!(serial.max_abs_diff(&per_call), 0.0, "gemm_serial must be bit-identical");

    let mut parallel = c0.clone();
    gemm_parallel(&mut parallel, &a, &b);
    assert_eq!(parallel.max_abs_diff(&per_call), 0.0, "gemm_parallel must be bit-identical");
}

/// The threaded runtimes inherit the equivalence end to end: the worker's
/// resident-B prepack must leave `run_holm` bit-identical to the serial
/// product (which itself prepacks), at an aligned and a tail block side.
#[test]
fn run_holm_stays_bit_identical_to_serial_with_worker_prepacks() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    for q in [8usize, 33] {
        let a = random_matrix(5, 7, q, 961);
        let b = random_matrix(7, 9, q, 962);
        let c0 = random_matrix(5, 9, q, 963);
        let mut serial = c0.clone();
        gemm_serial(&mut serial, &a, &b);
        let out = run_holm(&platform, &a, &b, c0, 0.0).unwrap();
        assert_eq!(
            out.c.max_abs_diff(&serial),
            0.0,
            "q = {q}: runtime with worker prepacks diverges from the serial product"
        );
    }
}

/// The LU worker's once-per-step horizontal-panel pack must leave the
/// parallel factorization bit-identical to the serial blocked one (same
/// kernel, same row-partitioned rank-µ arithmetic).
#[test]
fn run_lu_stays_bit_identical_to_serial_with_panel_prepacks() {
    let platform = Platform::homogeneous(3, 1.0, 1.0, 1000).unwrap();
    for (n_blocks, q, mu) in [(4usize, 6usize, 2usize), (2, 33, 1)] {
        let matrix = random_diagonally_dominant(n_blocks, q, 971);
        let out = run_lu(&platform, &matrix, mu, 0.0);
        let mut serial = Dense::from_blocks(&matrix);
        lu_blocked_in_place(&mut serial, mu * q);
        assert_eq!(
            out.packed.max_abs_diff(&serial),
            0.0,
            "{n_blocks}x{q} µ={mu}: prepacked parallel LU diverges from serial blocked LU"
        );
    }
}

//! Transport cross-validation: the loopback socket backends (TCP, and
//! Unix-domain sockets where available) must produce **bit-identical**
//! results to the in-process channel transport on every runtime — HoLM,
//! the heterogeneous two-phase scheme, and the threaded LU — with
//! identical traffic accounting. The transports share every line of
//! master and worker compute code; only the bytes' route differs, so any
//! divergence is a framing bug by construction.
//!
//! Constructed with explicit [`TransportMode`]s so all backends are
//! compared inside one process regardless of `MWP_TRANSPORT` (the CI
//! `MWP_TRANSPORT=tcp` leg additionally routes the *whole* suite's
//! implicit sessions over loopback sockets).

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::{random_diagonally_dominant, random_matrix};
use mwp_blockmat::gemm::gemm_serial;
use mwp_core::session::RuntimeSession;
use mwp_lu::runtime::LuSession;
use mwp_msg::TransportMode;

/// The socket modes this platform can run.
fn socket_modes() -> Vec<TransportMode> {
    let mut modes = vec![TransportMode::Tcp];
    if cfg!(unix) {
        modes.push(TransportMode::Uds);
    }
    modes
}

#[test]
fn holm_over_sockets_matches_channels_bitwise() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    let channel = RuntimeSession::with_transport(&platform, 0.0, TransportMode::Channel);
    for mode in socket_modes() {
        let socket = RuntimeSession::with_transport(&platform, 0.0, mode);
        // Consecutive runs on one socket session, with a q change in the
        // middle (scratch reset on the far side of a real socket).
        for (round, q) in [(0u64, 8usize), (1, 8), (2, 33)] {
            let a = random_matrix(5, 7, q, 131 + round);
            let b = random_matrix(7, 9, q, 141 + round);
            let c0 = random_matrix(5, 9, q, 151 + round);
            let over_socket = socket.run_holm(&a, &b, c0.clone()).unwrap();
            let over_channel = channel.run_holm(&a, &b, c0.clone()).unwrap();
            assert_eq!(
                over_socket.c.max_abs_diff(&over_channel.c),
                0.0,
                "{mode:?} round {round} (q = {q}): socket vs channel bits"
            );
            assert_eq!(over_socket.blocks_moved, over_channel.blocks_moved, "{mode:?} {round}");
            assert_eq!(over_socket.workers_used, over_channel.workers_used, "{mode:?} {round}");
            assert_eq!(over_socket.chunk_side, over_channel.chunk_side, "{mode:?} {round}");

            // And both match the serial oracle product bit-for-bit.
            let mut serial = c0;
            gemm_serial(&mut serial, &a, &b);
            assert_eq!(over_socket.c.max_abs_diff(&serial), 0.0, "{mode:?} {round} vs serial");
        }
        assert_eq!(socket.shutdown(), 4);
    }
    channel.shutdown();
}

#[test]
fn heterogeneous_over_tcp_matches_channels_bitwise() {
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .unwrap();
    let channel = RuntimeSession::with_transport(&platform, 0.0, TransportMode::Channel);
    let socket = RuntimeSession::with_transport(&platform, 0.0, TransportMode::Tcp);
    let q = 4;
    for rule in [SelectionRule::Global, SelectionRule::Local] {
        let a = random_matrix(10, 4, q, 161);
        let b = random_matrix(4, 13, q, 171);
        let c0 = random_matrix(10, 13, q, 181);
        let over_socket = socket.run_heterogeneous(&a, &b, c0.clone(), rule).unwrap();
        let over_channel = channel.run_heterogeneous(&a, &b, c0, rule).unwrap();
        assert_eq!(
            over_socket.c.max_abs_diff(&over_channel.c),
            0.0,
            "{rule:?}: heterogeneous socket vs channel bits"
        );
        assert_eq!(over_socket.blocks_moved, over_channel.blocks_moved, "{rule:?}");
        assert_eq!(over_socket.workers_used, over_channel.workers_used, "{rule:?}");
    }
    socket.shutdown();
    channel.shutdown();
}

#[test]
fn lu_over_sockets_matches_channels_bitwise() {
    let platform = Platform::homogeneous(3, 1.0, 1.0, 1000).unwrap();
    let channel = LuSession::with_transport(&platform, 0.0, TransportMode::Channel);
    for mode in socket_modes() {
        let socket = LuSession::with_transport(&platform, 0.0, mode);
        for (round, (r, q, mu)) in [(0u64, (4usize, 6usize, 2usize)), (1, (4, 6, 1)), (2, (3, 5, 2))] {
            let matrix = random_diagonally_dominant(r, q, 191 + round);
            let over_socket = socket.run(&matrix, mu);
            let over_channel = channel.run(&matrix, mu);
            assert_eq!(
                over_socket.packed.max_abs_diff(&over_channel.packed),
                0.0,
                "{mode:?} round {round}: LU socket vs channel bits"
            );
            assert_eq!(over_socket.messages, over_channel.messages, "{mode:?} {round}");
        }
        assert_eq!(socket.shutdown(), 3);
    }
    channel.shutdown();
}

/// The one-shot entry points honour `MWP_TRANSPORT` via the session they
/// implicitly spawn; whatever that mode is, their results must equal the
/// explicit channel transport's. (Under the `MWP_TRANSPORT=tcp` CI leg
/// this routes a fresh-spawned loopback-socket star per call.)
#[test]
fn one_shot_entry_points_match_explicit_channel_sessions() {
    let platform = Platform::homogeneous(3, 4.0, 1.0, 60).unwrap();
    let q = 8;
    let a = random_matrix(4, 3, q, 211);
    let b = random_matrix(3, 6, q, 221);
    let c0 = random_matrix(4, 6, q, 231);
    let ambient = run_holm(&platform, &a, &b, c0.clone(), 0.0).unwrap();
    let channel = RuntimeSession::with_transport(&platform, 0.0, TransportMode::Channel);
    let explicit = channel.run_holm(&a, &b, c0).unwrap();
    assert_eq!(ambient.c.max_abs_diff(&explicit.c), 0.0);
    assert_eq!(ambient.blocks_moved, explicit.blocks_moved);
    channel.shutdown();
}

//! End-to-end pipelines: generate a platform, select resources, simulate,
//! execute for real, verify numerics.

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::{random_diagonally_dominant, random_matrix};
use mwp_blockmat::gemm::verify_product;
use mwp_platform::generator::{HeterogeneityProfile, PlatformGenerator};

/// The full homogeneous pipeline of the paper, at test scale.
#[test]
fn homogeneous_pipeline() {
    // 1. Calibrated platform.
    let cm = CostModel::from_profile(8, &HardwareProfile::tennessee_2006());
    let platform = Platform::homogeneous(6, cm.c().value(), cm.w().value(), 60).unwrap();

    // 2. Resource selection.
    let params = platform.homogeneous_params().unwrap();
    let sel = select_homogeneous(&params, platform.len(), 12, 18);
    assert!(sel.workers >= 1 && sel.workers <= 6);

    // 3. Simulate all seven algorithms; all must complete the work.
    let problem = Partition::from_blocks(12, 18, 10, 8);
    for kind in AlgorithmKind::ALL {
        let report = simulate(kind, &platform, &problem).unwrap();
        assert_eq!(report.total_updates(), problem.total_updates(), "{}", kind.name());
    }

    // 4. Execute HoLM for real and verify the product.
    let a = random_matrix(12, 10, 8, 1);
    let b = random_matrix(10, 18, 8, 2);
    let c0 = random_matrix(12, 18, 8, 3);
    let out = run_holm(&platform, &a, &b, c0.clone(), 0.0).unwrap();
    assert!(verify_product(&out.c, &c0, &a, &b, 1e-9).is_ok());
    assert_eq!(out.workers_used, sel.workers);
}

/// Heterogeneous pipeline: generated platform → steady state → incremental
/// selection → simulated execution.
#[test]
fn heterogeneous_pipeline() {
    use mwp_core::algorithms::heterogeneous::simulate_heterogeneous;
    let gen = PlatformGenerator::new(2.0, 2.0, 150, HeterogeneityProfile::strong());
    for seed in 0..5 {
        let platform = gen.generate(5, seed);
        let ss = steady_state(&platform);
        assert!(ss.throughput > 0.0);
        let problem = Partition::from_blocks(30, 30, 50, 80);
        let report = simulate_heterogeneous(&platform, &problem, SelectionRule::Global)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.total_updates() > 0);
        assert!(
            report.throughput() <= ss.throughput * 1.001,
            "seed {seed}: throughput above the steady-state bound"
        );
    }
}

/// LU pipeline: cost model → µ search → simulation → numerics.
#[test]
fn lu_pipeline() {
    use mwp_lu::cost::LuProblem;
    use mwp_lu::heterogeneous::best_pivot_size;
    use mwp_lu::homogeneous::simulate_homogeneous_lu;
    use mwp_lu::single::verify;

    let platform = Platform::homogeneous(4, 1.0, 2.0, 200).unwrap();
    let (mu, _) = best_pivot_size(&platform, 24);
    assert!(mu >= 1 && 24 % mu == 0);

    let problem = LuProblem::new(24, mu.clamp(2, 12));
    let (report, enrolled) = simulate_homogeneous_lu(&platform, problem).unwrap();
    assert!(enrolled >= 1);
    assert!(report.makespan.value() > 0.0);

    // Real factorization with the same second-level blocking.
    let matrix = random_diagonally_dominant(6, 4, 123);
    let err = verify(&matrix, 2, 1e-8).expect("factorization accurate");
    assert!(err < 1e-8);
}

/// The facade's prelude exposes a coherent API (compile-time test mostly).
#[test]
fn prelude_is_usable() {
    let plan = MemoryPlan::derive(MemoryLayout::MaxReuseOverlapped, 60);
    assert_eq!(plan.mu, 6);
    let platform = Platform::homogeneous(2, 1.0, 1.0, 60).unwrap();
    assert_eq!(platform.len(), 2);
    assert!(bounds::max_reuse_optimality_gap() < 1.1);
    let trace = run_selection(&platform, SelectionRule::Global, 6, 6, 2);
    assert!(trace.columns_filled >= 6);
}

//! Persistent-session cross-validation: a session reused over N
//! back-to-back runs must produce **bit-identical** results to N
//! fresh-spawn runs — under whichever kernel the dispatcher picked (the
//! `MWP_KERNEL=scalar` CI leg covers the fallback; the
//! `MWP_RUNTIME=session` leg routes even the "fresh" calls below through
//! the process-wide pool, which must change nothing either). Block sides
//! vary across the runs so the pooled workers' in-place scratch reset
//! (q-bound storage) is exercised, not just the warm path.

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::{random_diagonally_dominant, random_matrix};
use mwp_blockmat::gemm::gemm_serial;
use mwp_core::session::RuntimeSession;
use mwp_lu::runtime::{run_lu, LuSession};

/// N reused-session HoLM runs vs N fresh-spawn runs: same C bits, same
/// traffic, same enrollment — and both bit-identical to the serial
/// product (same kernel, same per-block accumulation order).
#[test]
fn reused_session_matches_fresh_spawn_bitwise() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    let session = RuntimeSession::new(&platform, 0.0);
    for (round, q) in [(0u64, 8usize), (1, 8), (2, 33), (3, 16), (4, 33)] {
        let a = random_matrix(5, 7, q, 401 + round);
        let b = random_matrix(7, 9, q, 501 + round);
        let c0 = random_matrix(5, 9, q, 601 + round);

        let pooled = session.run_holm(&a, &b, c0.clone()).unwrap();
        let fresh = run_holm(&platform, &a, &b, c0.clone(), 0.0).unwrap();
        assert_eq!(
            pooled.c.max_abs_diff(&fresh.c),
            0.0,
            "round {round} (q = {q}): pooled and fresh-spawn runs must be bit-identical"
        );
        assert_eq!(pooled.blocks_moved, fresh.blocks_moved, "round {round}");
        assert_eq!(pooled.workers_used, fresh.workers_used, "round {round}");
        assert_eq!(pooled.chunk_side, fresh.chunk_side, "round {round}");

        let mut serial = c0;
        gemm_serial(&mut serial, &a, &b);
        assert_eq!(pooled.c.max_abs_diff(&serial), 0.0, "round {round} vs serial");
    }
    assert_eq!(session.shutdown(), 4);
}

/// The same guarantee for the heterogeneous two-phase runtime, whose
/// chunks have per-worker sizes.
#[test]
fn reused_session_heterogeneous_matches_fresh_spawn() {
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .unwrap();
    let session = RuntimeSession::new(&platform, 0.0);
    let q = 4;
    for round in 0..3u64 {
        let a = random_matrix(10, 4, q, 411 + round);
        let b = random_matrix(4, 13, q, 511 + round);
        let c0 = random_matrix(10, 13, q, 611 + round);

        let pooled = session
            .run_heterogeneous(&a, &b, c0.clone(), SelectionRule::Global)
            .unwrap();
        let fresh =
            run_heterogeneous(&platform, &a, &b, c0, SelectionRule::Global, 0.0).unwrap();
        assert_eq!(pooled.c.max_abs_diff(&fresh.c), 0.0, "round {round}");
        assert_eq!(pooled.blocks_moved, fresh.blocks_moved, "round {round}");
        assert_eq!(pooled.workers_used, fresh.workers_used, "round {round}");
    }
    assert_eq!(session.shutdown(), 3);
}

/// One session can interleave HoLM, ORROML, and heterogeneous-capable
/// platforms' shapes of runs back to back; every run stays correct.
#[test]
fn one_session_serves_mixed_run_kinds() {
    let platform = Platform::homogeneous(3, 4.0, 1.0, 60).unwrap();
    let session = RuntimeSession::new(&platform, 0.0);
    let q = 8;
    let a = random_matrix(4, 5, q, 421);
    let b = random_matrix(5, 6, q, 521);
    let c0 = random_matrix(4, 6, q, 621);

    let holm = session.run_holm(&a, &b, c0.clone()).unwrap();
    let orroml = session.run_all_workers(&a, &b, c0.clone()).unwrap();
    let fresh_holm = run_holm(&platform, &a, &b, c0.clone(), 0.0).unwrap();
    let fresh_orroml = run_all_workers(&platform, &a, &b, c0, 0.0).unwrap();
    assert_eq!(holm.c.max_abs_diff(&fresh_holm.c), 0.0);
    assert_eq!(orroml.c.max_abs_diff(&fresh_orroml.c), 0.0);
    assert_eq!(session.shutdown(), 3);
}

/// N reused-session LU factorizations vs N fresh-spawn ones: bit-identical
/// packed factors and identical message counts, across block sides and
/// panel widths.
#[test]
fn reused_lu_session_matches_fresh_spawn_bitwise() {
    let platform = Platform::homogeneous(3, 1.0, 1.0, 1000).unwrap();
    let session = LuSession::new(&platform, 0.0);
    for (round, (n_blocks, q, mu)) in
        [(3usize, 8usize, 1usize), (4, 6, 2), (2, 33, 1), (4, 6, 4)].into_iter().enumerate()
    {
        let m = random_diagonally_dominant(n_blocks, q, 431 + round as u64);
        let pooled = session.run(&m, mu);
        let fresh = run_lu(&platform, &m, mu, 0.0);
        assert_eq!(
            pooled.packed.max_abs_diff(&fresh.packed),
            0.0,
            "round {round} (n = {n_blocks}, q = {q}, µ = {mu}): factors must be bit-identical"
        );
        assert_eq!(pooled.messages, fresh.messages, "round {round}");
        assert_eq!(pooled.workers_used, fresh.workers_used, "round {round}");
    }
    assert_eq!(session.shutdown(), 3);
}

/// Orderly shutdown joins every pooled worker thread — even the ones a
/// selective run never enrolled (they sat parked the whole time).
#[test]
fn shutdown_joins_every_worker_thread() {
    let platform = Platform::homogeneous(5, 4.0, 1.0, 60).unwrap();
    let session = RuntimeSession::new(&platform, 0.0);
    let q = 8;
    let a = random_matrix(3, 3, q, 441);
    let b = random_matrix(3, 3, q, 541);
    let c0 = random_matrix(3, 3, q, 641);
    let out = session.run_holm(&a, &b, c0).unwrap();
    assert!(out.workers_used < 5, "selection should leave some workers parked");
    assert_eq!(session.shutdown(), 5, "all five workers must join, enrolled or not");

    let lu_session = LuSession::new(&platform, 0.0);
    assert_eq!(lu_session.shutdown(), 5, "a session that never ran still joins cleanly");
}

/// Dropping a session without an explicit shutdown must also terminate
/// and join its workers (the test would hang under the harness timeout
/// if a parked worker leaked).
#[test]
fn dropping_a_session_terminates_its_workers() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    let q = 8;
    let a = random_matrix(3, 4, q, 451);
    let b = random_matrix(4, 3, q, 551);
    let c0 = random_matrix(3, 3, q, 651);
    {
        let session = RuntimeSession::new(&platform, 0.0);
        session.run_holm(&a, &b, c0).unwrap();
        // session dropped here, mid-lifetime, with workers parked
    }
    {
        let _unused = LuSession::new(&platform, 0.0);
        // dropped without ever serving a run
    }
}

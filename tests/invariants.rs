//! Property-based invariants across crates: for randomized platforms and
//! problems, every algorithm preserves the model's laws.

use master_worker_matrix::prelude::*;
use mwp_core::algorithms::simulate_traced;
use proptest::prelude::*;

fn small_problem() -> impl Strategy<Value = Partition> {
    (1usize..8, 1usize..8, 1usize..8)
        .prop_map(|(r, s, t)| Partition::from_blocks(r, s, t, 80))
}

fn small_platform() -> impl Strategy<Value = Platform> {
    (1usize..5, 1u32..6, 1u32..6, 12usize..200).prop_map(|(p, c, w, m)| {
        Platform::homogeneous(p, c as f64, w as f64, m).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm computes exactly r·s·t block updates and returns
    /// every C block exactly once, on any platform/problem combination.
    #[test]
    fn work_conservation(pf in small_platform(), pr in small_problem()) {
        for kind in AlgorithmKind::ALL {
            let report = match simulate(kind, &pf, &pr) {
                Ok(r) => r,
                // Tiny memories can be legitimately rejected.
                Err(mwp_core::algorithms::AlgoError::MemoryTooSmall { .. }) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{}: {e}", kind.name()))),
            };
            prop_assert_eq!(report.total_updates(), pr.total_updates(),
                "{} lost updates", kind.name());
            prop_assert_eq!(report.blocks_received, pr.c_blocks(),
                "{} returned wrong C volume", kind.name());
        }
    }

    /// The one-port property holds in every trace: no two port activities
    /// overlap, and no worker computes two things at once.
    #[test]
    fn one_port_never_violated(pf in small_platform(), pr in small_problem()) {
        for kind in [AlgorithmKind::HoLM, AlgorithmKind::ODDOML, AlgorithmKind::BMM] {
            let report = match simulate_traced(kind, &pf, &pr) {
                Ok(r) => r,
                Err(_) => continue,
            };
            prop_assert!(report.trace.check_no_overlap().is_ok(),
                "{} violated resource exclusivity", kind.name());
        }
    }

    /// Makespan is bounded below by both the port bound (all blocks at c)
    /// and the compute bound (all updates spread over all workers).
    #[test]
    fn makespan_lower_bounds(pf in small_platform(), pr in small_problem()) {
        let params = pf.homogeneous_params().unwrap();
        for kind in AlgorithmKind::ALL {
            let report = match simulate(kind, &pf, &pr) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let port_lb = (report.blocks_sent + report.blocks_received) as f64 * params.c;
            let comp_lb = pr.total_updates() as f64 * params.w / pf.len() as f64;
            let makespan = report.makespan.value();
            prop_assert!(makespan >= port_lb * 0.999,
                "{}: makespan {makespan} below port bound {port_lb}", kind.name());
            prop_assert!(makespan >= comp_lb * 0.999,
                "{}: makespan {makespan} below compute bound {comp_lb}", kind.name());
        }
    }

    /// In the full-µ regime HoLM never uses more workers than ORROML (in
    /// the small-matrix regime it may legitimately use *more*: it shrinks
    /// chunks to ν to keep several workers busy where ORROML would put
    /// the single undersized chunk on one worker). Work conservation
    /// holds in every regime.
    #[test]
    fn holm_is_thrifty(pf in small_platform(), pr in small_problem()) {
        let holm = match simulate(AlgorithmKind::HoLM, &pf, &pr) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let orro = simulate(AlgorithmKind::ORROML, &pf, &pr).expect("same layout fits");
        let params = pf.homogeneous_params().unwrap();
        let sel = select_homogeneous(&params, pf.len(), pr.r, pr.s);
        if sel.full_mu_regime {
            prop_assert!(holm.workers_used() <= orro.workers_used());
        }
        prop_assert!(holm.total_updates() == orro.total_updates());
    }

    /// The toy-model heuristics always schedule all r·s tasks, and the
    /// alternating greedy bound of Proposition 1 holds against Thrifty
    /// restricted to one worker.
    #[test]
    fn toy_heuristics_complete(r in 1usize..5, s in 1usize..5, p in 1usize..4,
                               c in 1u32..8, w in 1u32..8) {
        use mwp_core::toy::{min_min, thrifty, ToyInstance};
        let inst = ToyInstance { r, s, p, c: c as f64, w: w as f64 };
        let t = thrifty(&inst);
        let m = min_min(&inst);
        prop_assert_eq!(t.tasks_done(), r * s);
        prop_assert_eq!(m.tasks_done(), r * s);
        prop_assert!(t.makespan() > 0.0 && m.makespan() > 0.0);
    }
}

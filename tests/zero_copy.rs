//! The zero-copy contract of the block data path: fan-out shares one
//! backing buffer end to end, and the rewritten runtime still computes
//! exactly what the serial product computes.

use bytes::Bytes;
use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::random_matrix;
use mwp_blockmat::gemm::gemm_serial;
use mwp_blockmat::SharedPayloads;
use mwp_msg::{Frame, FrameKind, StarNetwork, Tag};
use std::thread;

/// A `B` block fanned out to several workers must arrive in every one of
/// them backed by the **same** buffer: the payload pointer observed inside
/// each worker thread is identical (refcount bumps, zero copies), and it
/// is the pointer of the master's shared payload cache itself.
#[test]
fn b_block_fanout_shares_one_backing_buffer() {
    let platform = Platform::homogeneous(3, 1.0, 1.0, 16).unwrap();
    let (master, workers) = StarNetwork::build(&platform, 0.0).into_endpoints();

    let b = random_matrix(2, 4, 8, 42);
    let payloads = SharedPayloads::new(&b);
    let shared = payloads.get(1, 2);
    let master_ptr = shared.as_ptr() as u64;

    // Each worker reports the address of the payload it received.
    let handles: Vec<_> = workers
        .into_iter()
        .map(|w| {
            thread::spawn(move || {
                let f = w.recv().unwrap();
                assert_eq!(f.tag.kind, FrameKind::BlockB);
                let ptr = f.payload.as_ptr() as u64;
                w.send(Frame::new(
                    Tag::new(FrameKind::Control, 0, 0),
                    Bytes::from(ptr.to_le_bytes().to_vec()),
                ));
            })
        })
        .collect();

    for i in 0..3 {
        master.send(
            WorkerId(i),
            Frame::new(Tag::new(FrameKind::BlockB, 1, 2), shared.clone()),
            1,
        );
    }
    for i in 0..3 {
        let (f, _) = master.recv(WorkerId(i), 0).unwrap();
        let ptr = u64::from_le_bytes(f.payload[..8].try_into().unwrap());
        assert_eq!(
            ptr, master_ptr,
            "worker {i} received a copy instead of a view of the shared buffer"
        );
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Multi-block run payloads (a whole `B` row stretch) are also views of
/// the one shared buffer, not copies.
#[test]
fn row_run_fanout_shares_one_backing_buffer() {
    let b = random_matrix(3, 5, 4, 7);
    let payloads = SharedPayloads::new(&b);
    let run_a = payloads.row_run(2, 1, 3);
    let run_b = payloads.row_run(2, 1, 3);
    assert_eq!(run_a.as_ptr(), run_b.as_ptr());
    // The run starts exactly at block (2,1)'s payload.
    assert_eq!(run_a.as_ptr(), payloads.get(2, 1).as_ptr());
    // Frames wrapping the run still share it.
    let f1 = Frame::new(Tag::new(FrameKind::BlockB, 2, 1), run_a.clone());
    let f2 = Frame::new(Tag::new(FrameKind::BlockB, 2, 1), run_a.clone());
    assert_eq!(f1.payload.as_ptr(), f2.payload.as_ptr());
}

/// After the zero-copy rewrite, the threaded runtime must still match the
/// serial block product **bit for bit**: both accumulate each C block over
/// `k` in ascending order with the identical kernel, so not even the last
/// ulp may differ.
#[test]
fn run_holm_matches_gemm_serial_bitwise() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    let q = 16;
    let a = random_matrix(5, 7, q, 101);
    let b = random_matrix(7, 9, q, 102);
    let c0 = random_matrix(5, 9, q, 103);

    let mut serial = c0.clone();
    gemm_serial(&mut serial, &a, &b);

    let out = run_holm(&platform, &a, &b, c0, 0.0).unwrap();
    assert_eq!(
        out.c.max_abs_diff(&serial),
        0.0,
        "threaded runtime and serial product must be bit-identical"
    );
}

/// Same bitwise guarantee for the heterogeneous two-phase runtime, whose
/// chunks have per-worker sizes.
#[test]
fn run_heterogeneous_matches_gemm_serial_bitwise() {
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .unwrap();
    let q = 8;
    let (r, t, s) = (10, 4, 13);
    let a = random_matrix(r, t, q, 201);
    let b = random_matrix(t, s, q, 202);
    let c0 = random_matrix(r, s, q, 203);

    let mut serial = c0.clone();
    gemm_serial(&mut serial, &a, &b);

    let out = run_heterogeneous(&platform, &a, &b, c0, SelectionRule::Global, 0.0).unwrap();
    assert_eq!(out.c.max_abs_diff(&serial), 0.0);
}

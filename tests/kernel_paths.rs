//! Every compute path — serial/parallel products, both master-worker
//! matrix runtimes, and the threaded LU — runs the same dispatched block
//! kernel, and all of them cross-validate against the independent naive
//! oracle. Block sides are chosen to hit both the aligned case and the
//! tails of the 4×8 register tile (q = 33 leaves one row and one column
//! stripe partial on every update).

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::{random_diagonally_dominant, random_matrix};
use mwp_blockmat::gemm::{gemm_parallel, gemm_serial, gemm_serial_oracle, verify_product};
use mwp_blockmat::kernel;
use mwp_blockmat::lu::{reconstruct, Dense};
use mwp_lu::runtime::run_lu;

/// Aligned (q = 8, 16) and tail (q = 33) block sides: the threaded HoLM
/// runtime must agree with the serial product bit for bit (same kernel,
/// same per-block accumulation order) and with the naive oracle within
/// rounding.
#[test]
fn run_holm_cross_validates_on_aligned_and_tail_sizes() {
    let platform = Platform::homogeneous(4, 4.0, 1.0, 60).unwrap();
    for q in [8usize, 16, 33] {
        let a = random_matrix(5, 7, q, 301);
        let b = random_matrix(7, 9, q, 302);
        let c0 = random_matrix(5, 9, q, 303);

        let mut serial = c0.clone();
        gemm_serial(&mut serial, &a, &b);

        let out = run_holm(&platform, &a, &b, c0.clone(), 0.0).unwrap();
        assert_eq!(
            out.c.max_abs_diff(&serial),
            0.0,
            "q = {q}: runtime and serial product must be bit-identical"
        );
        // And against the independent oracle, within a rounding tolerance.
        verify_product(&out.c, &c0, &a, &b, 1e-9)
            .unwrap_or_else(|e| panic!("q = {q}: runtime off the oracle by {e}"));
    }
}

/// The heterogeneous two-phase runtime on a tail block side.
#[test]
fn run_heterogeneous_cross_validates_on_tail_size() {
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .unwrap();
    let q = 33;
    let (r, t, s) = (10, 4, 13);
    let a = random_matrix(r, t, q, 311);
    let b = random_matrix(t, s, q, 312);
    let c0 = random_matrix(r, s, q, 313);

    let mut serial = c0.clone();
    gemm_serial(&mut serial, &a, &b);

    let out = run_heterogeneous(&platform, &a, &b, c0.clone(), SelectionRule::Global, 0.0)
        .unwrap();
    assert_eq!(out.c.max_abs_diff(&serial), 0.0);
    verify_product(&out.c, &c0, &a, &b, 1e-9)
        .unwrap_or_else(|e| panic!("heterogeneous runtime off the oracle by {e}"));
}

/// The rayon-parallel product stays bit-identical to serial (both run the
/// dispatched kernel with the same per-block k order) on a tail size.
#[test]
fn gemm_parallel_bitwise_on_tail_size() {
    let q = 33;
    let a = random_matrix(4, 6, q, 321);
    let b = random_matrix(6, 5, q, 322);
    let mut c1 = random_matrix(4, 5, q, 323);
    let mut c2 = c1.clone();
    gemm_serial(&mut c1, &a, &b);
    gemm_parallel(&mut c2, &a, &b);
    assert_eq!(c1.max_abs_diff(&c2), 0.0);
}

/// The threaded LU runtime (whose rank-µ core updates run the dispatched
/// kernel with alpha = −1) reconstructs L·U ≈ A on aligned and tail block
/// sides.
#[test]
fn run_lu_reconstructs_on_aligned_and_tail_sizes() {
    let platform = Platform::homogeneous(3, 2.0, 1.0, 60).unwrap();
    for (n_blocks, q) in [(3usize, 8usize), (2, 33)] {
        let m = random_diagonally_dominant(n_blocks, q, 331);
        let out = run_lu(&platform, &m, 1, 0.0);
        let dense = Dense::from_blocks(&m);
        let lu = reconstruct(&out.packed);
        let scale = dense.max_abs_diff(&Dense::zeros(n_blocks * q, n_blocks * q)).max(1.0);
        let err = lu.max_abs_diff(&dense);
        assert!(
            err < 1e-8 * scale,
            "q = {q}: L·U off A by {err} (scale {scale})"
        );
    }
}

/// The serial product through the dispatched kernel agrees with the naive
/// oracle within `t·q · ‖A‖ · ‖B‖ · ε` on a tail size — whichever kernel
/// the dispatcher picked on this machine (the MWP_KERNEL=scalar CI job
/// covers the forced-fallback configuration).
#[test]
fn dispatched_product_matches_oracle_on_tail_size() {
    let q = 33;
    let (r, t, s) = (3usize, 4usize, 5usize);
    let a = random_matrix(r, t, q, 341);
    let b = random_matrix(t, s, q, 342);
    let c0 = random_matrix(r, s, q, 343);
    let mut fast = c0.clone();
    gemm_serial(&mut fast, &a, &b);
    let mut oracle = c0.clone();
    gemm_serial_oracle(&mut oracle, &a, &b);
    let tol = 4.0 * (t * q) as f64 * f64::EPSILON; // entries are in [-1, 1]
    let err = fast.max_abs_diff(&oracle);
    assert!(
        err <= tol,
        "kernel {} diverges from the oracle: {err} > {tol}",
        kernel::active().name()
    );
}

//! The recorder's zero-cost contract when tracing is off.
//!
//! `MWP_TRACE=off` (or unset) must mean *off*: no span is recorded
//! anywhere, and the hot-path gate `record::enabled()` performs no
//! allocation — it is the only tracing code the instrumented send/recv
//! and compute paths execute in that state, so it is the whole overhead.
//!
//! This file installs a counting global allocator, so it holds exactly
//! one `#[test]` — a second test running concurrently would alloc into
//! the counter. When the suite itself runs under `MWP_TRACE=json:…`
//! (the CI tracing leg) the premise is false and the test skips itself.

use mwp_blockmat::fill::random_matrix;
use mwp_core::session::RuntimeSession;
use mwp_platform::Platform;
use mwp_trace::record::{self, Capture};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn tracing_off_records_nothing_and_does_not_allocate() {
    match std::env::var("MWP_TRACE").ok().as_deref() {
        None | Some("") | Some("off") => {}
        Some(_) => {
            eprintln!("skipping: MWP_TRACE is set for this process");
            return;
        }
    }

    // Warm the mode cache (first call parses the env var, which may
    // allocate once) before measuring the steady state.
    assert!(!record::enabled(), "no capture and no sink: tracing is off");

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut off = 0usize;
    for _ in 0..10_000 {
        off += usize::from(!record::enabled());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(off, 10_000, "enabled() flipped on without a capture");
    assert_eq!(
        after - before,
        0,
        "record::enabled() allocated on the tracing-off hot path"
    );

    // A real run with tracing off leaves no trace behind: a capture
    // opened afterwards starts empty (nothing pending leaks forward).
    let pf = Platform::homogeneous(2, 2.0, 1.0, 60).expect("valid platform");
    let a = random_matrix(2, 2, 4, 1);
    let b = random_matrix(2, 3, 4, 2);
    let c0 = random_matrix(2, 3, 4, 3);
    let session = RuntimeSession::new(&pf, 0.0);
    session.run_holm(&a, &b, c0).expect("run succeeds");
    session.shutdown();

    let capture = Capture::begin();
    let leftovers = capture.end();
    assert!(
        leftovers.activities.is_empty(),
        "a tracing-off run leaked {} spans into a later capture",
        leftovers.activities.len()
    );
}

//! The Section 7 LU extension: cost model, resource selection, pivot-size
//! search, and a numerically verified factorization.
//!
//! ```text
//! cargo run --release --example lu_factorization
//! ```

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::random_diagonally_dominant;
use mwp_blockmat::lu::{reconstruct, Dense};
use mwp_lu::cost::LuProblem;
use mwp_lu::heterogeneous::{best_pivot_size, chunk_shape, ChunkShape};
use mwp_lu::homogeneous::{ideal_lu_workers, simulate_homogeneous_lu};
use mwp_lu::single::factor_single;

fn main() {
    // ------------------------------------------------------------------
    // 1. Cost model: where does the time go?
    // ------------------------------------------------------------------
    let problem = LuProblem::new(120, 6);
    let total = problem.total();
    println!(
        "LU of a {0}x{0}-block matrix with µ = {1}:",
        problem.r, problem.mu
    );
    println!(
        "  comm {:.0} blocks (closed form r³/µ + r² = {:.0}; paper's slip would give {:.0})",
        total.comm,
        total.comm_closed_form_exact(),
        total.comm_closed_form_paper()
    );
    println!(
        "  comp {:.0} block-ops, {:.0}% of it in the parallelizable core update",
        total.comp,
        100.0 * total.core_comp / total.comp
    );

    // ------------------------------------------------------------------
    // 2. Homogeneous cluster: P = ceil(µw/3c), then simulate.
    // ------------------------------------------------------------------
    let (c, w) = (0.5, 4.0);
    let p = ideal_lu_workers(problem.mu, w, c);
    println!("\nhomogeneous cluster (c = {c}, w = {w}): enroll P = {p} workers");
    let platform = Platform::homogeneous(p.min(16), c, w, 200).expect("valid platform");
    let (report, enrolled) = simulate_homogeneous_lu(&platform, problem).expect("simulation");
    println!(
        "  simulated makespan {:.0} with {enrolled} workers, port busy {:.0}%",
        report.makespan.value(),
        100.0 * report.port_utilization()
    );

    // ------------------------------------------------------------------
    // 3. Heterogeneous: chunk shapes and the exhaustive µ search.
    // ------------------------------------------------------------------
    let het = Platform::new(vec![
        WorkerParams::new(1.0, 1.0, 400),
        WorkerParams::new(1.5, 0.8, 300),
        WorkerParams::new(2.0, 1.2, 500),
    ])
    .expect("valid platform");
    println!("\nchunk shapes at µ = 10 for under-provisioned workers:");
    for mu_i in [3, 5, 7, 10] {
        let shape = chunk_shape(mu_i, 10);
        let label = match shape {
            ChunkShape::Square => "square µ_i × µ_i",
            ChunkShape::WholeColumns => "whole columns",
        };
        println!("  µ_i = {mu_i}: {label}");
    }
    let (best_mu, est) = best_pivot_size(&het, 60);
    println!("exhaustive µ search on the heterogeneous platform: µ* = {best_mu} (est. {est:.0})");

    // ------------------------------------------------------------------
    // 4. Real arithmetic: factor and verify.
    // ------------------------------------------------------------------
    let matrix = random_diagonally_dominant(6, 10, 42); // 60×60 elements
    let packed = factor_single(&matrix, 2);
    let err = reconstruct(&packed).max_abs_diff(&Dense::from_blocks(&matrix));
    println!("\nnumeric check: ‖L·U − A‖_max = {err:.2e}");
    assert!(err < 1e-8, "factorization must be accurate");
}

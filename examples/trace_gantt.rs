//! Render ASCII Gantt charts of simulated schedules — the textual
//! counterpart of the paper's Figures 7 and 8 (master row `M`, worker
//! rows; `s` = send, `r` = receive, `#` = compute).
//!
//! ```text
//! cargo run --release --example trace_gantt
//! ```

use master_worker_matrix::prelude::*;
use mwp_core::algorithms::heterogeneous::HeterogeneousPolicy;
use mwp_sim::gantt;

fn main() {
    // ------------------------------------------------------------------
    // 1. The Table 2 platform under the global selection (Figure 7).
    // ------------------------------------------------------------------
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),
        WorkerParams::new(3.0, 3.0, 396),
        WorkerParams::new(5.0, 1.0, 140),
    ])
    .expect("valid platform");
    let problem = Partition::from_blocks(18, 18, 6, 80);
    let mut policy = HeterogeneousPolicy::plan(&platform, &problem, SelectionRule::Global);
    let report = Simulator::new(platform.clone()).run(&mut policy).expect("simulation");
    println!("=== Figure 7 style: global selection on the Table 2 platform ===");
    println!("{}", gantt::render_until(&report.trace, 3, 100, 2_000.0));

    // ------------------------------------------------------------------
    // 2. Same platform, local selection (Figure 8).
    // ------------------------------------------------------------------
    let mut policy = HeterogeneousPolicy::plan(&platform, &problem, SelectionRule::Local);
    let report = Simulator::new(platform.clone()).run(&mut policy).expect("simulation");
    println!("=== Figure 8 style: local selection ===");
    println!("{}", gantt::render_until(&report.trace, 3, 100, 2_000.0));

    // ------------------------------------------------------------------
    // 3. HoLM on a homogeneous platform: the Algorithm 1 lockstep.
    // ------------------------------------------------------------------
    let homo = Platform::homogeneous(4, 4.0, 1.0, 60).expect("valid platform");
    let small = Partition::from_blocks(12, 12, 8, 80);
    let report = simulate_traced(AlgorithmKind::HoLM, &homo, &small).expect("simulation");
    println!("=== HoLM (Algorithm 1) on 4 identical workers ===");
    println!("{}", gantt::render(&report.trace, 4, 100));
    println!(
        "makespan {:.0}, port utilization {:.0}%, workers used {}",
        report.makespan.value(),
        100.0 * report.port_utilization(),
        report.workers_used()
    );
}

//! Capacity planning with the paper's formulas: given hardware and a
//! workload, how many workers are worth enrolling, and what does buying
//! more memory or faster links actually change?
//!
//! ```text
//! cargo run --release --example cluster_sizing
//! ```

use master_worker_matrix::prelude::*;

fn main() {
    let q = 80;
    let problem = Partition::from_dims(16_000, 16_000, 64_000, q);
    println!("workload: {problem}\n");

    // ------------------------------------------------------------------
    // 1. How many workers saturate the master on each network generation?
    // ------------------------------------------------------------------
    println!("enrollment P = ceil(µw/2c) by memory and network:");
    println!(
        "{:<12} {:>10} {:>6} {:>10}   beyond P the master port is the bottleneck",
        "network", "mem (MB)", "µ", "P"
    );
    for (hw, net) in [
        (HardwareProfile::tennessee_2006(), "100 Mbps"),
        (HardwareProfile::modern(), "10 GbE"),
    ] {
        let cm = CostModel::from_profile(q, &hw);
        for mem_mb in [132usize, 512, 2048] {
            let m = cm.buffers_for_memory(mem_mb * 1024 * 1024);
            let mu = MemoryLayout::MaxReuseOverlapped.mu(m);
            let p = cm.ideal_worker_count(mu);
            println!("{net:<12} {mem_mb:>10} {mu:>6} {p:>10}");
        }
    }

    // ------------------------------------------------------------------
    // 2. Does adding workers past P help? Simulate and see.
    // ------------------------------------------------------------------
    let cm = CostModel::from_profile(q, &HardwareProfile::tennessee_2006());
    let m = cm.buffers_for_memory(512 * 1024 * 1024);
    println!("\nmakespan vs cluster size (512 MB workers, 100 Mbps):");
    let mut last = f64::INFINITY;
    for p in [1usize, 2, 4, 8, 16] {
        let platform = Platform::homogeneous(p, cm.c().value(), cm.w().value(), m)
            .expect("valid platform");
        let report = simulate(AlgorithmKind::ORROML, &platform, &problem).expect("simulation");
        let t = report.makespan.value();
        let marker = if t < last * 0.95 { "" } else { "   <- diminishing returns" };
        println!("  p = {p:>2}: {t:>8.0} s{marker}");
        last = t;
    }

    // ------------------------------------------------------------------
    // 3. The communication floor: no cluster can beat the lower bound.
    // ------------------------------------------------------------------
    let mu = MemoryLayout::MaxReuseOverlapped.mu(m);
    println!(
        "\ncommunication floor: CCR ≥ sqrt(27/8m) = {:.4}; the maximum re-use layout \
         achieves 2/t + 2/µ = {:.4} here — within {:.1}% of optimal.",
        bounds::lower_bound_loomis_whitney(m),
        bounds::ccr_max_reuse(mu, problem.t),
        100.0 * (bounds::ccr_max_reuse_asymptotic(m) / bounds::lower_bound_loomis_whitney(m) - 1.0)
    );
}

//! Quickstart: simulate the paper's homogeneous algorithm, then run the
//! same schedule for real (threads + message layer + actual block GEMMs)
//! and verify the numerical result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::random_matrix;
use mwp_blockmat::gemm::verify_product;

fn main() {
    // ------------------------------------------------------------------
    // 1. A calibrated platform: 8 Xeon-class workers on 100 Mbps links.
    // ------------------------------------------------------------------
    let cm = CostModel::from_profile(80, &HardwareProfile::tennessee_2006());
    let m = cm.buffers_for_memory(132 * 1024 * 1024); // 132 MB of buffers
    let platform = Platform::homogeneous(8, cm.c().value(), cm.w().value(), m)
        .expect("calibrated platform is valid");
    println!(
        "platform: 8 workers, c = {:.3} ms/block, w = {:.3} ms/update, m = {m} buffers",
        cm.c().value() * 1e3,
        cm.w().value() * 1e3,
    );

    // ------------------------------------------------------------------
    // 2. Resource selection: which workers does the paper enroll?
    // ------------------------------------------------------------------
    let params = platform.homogeneous_params().expect("homogeneous");
    let sel = select_homogeneous(&params, platform.len(), 100, 800);
    println!(
        "resource selection: P = {} workers, chunk side µ = {} blocks",
        sel.workers, sel.chunk_side
    );

    // ------------------------------------------------------------------
    // 3. Simulate HoLM on the paper's first Figure 10 matrix.
    // ------------------------------------------------------------------
    let problem = Partition::from_dims(8_000, 8_000, 64_000, 80);
    let report = simulate(AlgorithmKind::HoLM, &platform, &problem).expect("simulation");
    println!(
        "simulated {problem}: makespan {:.0} s, port busy {:.0}%, CCR {:.4} \
         (formula 2/t + 2/µ = {:.4})",
        report.makespan.value(),
        100.0 * report.port_utilization(),
        report.measured_ccr(),
        bounds::ccr_max_reuse(sel.chunk_side, problem.t),
    );

    // ------------------------------------------------------------------
    // 4. Execute a smaller product for real and verify it.
    // ------------------------------------------------------------------
    let q = 40;
    let a = random_matrix(8, 8, q, 1);
    let b = random_matrix(8, 16, q, 2);
    let c0 = random_matrix(8, 16, q, 3);
    let small = Platform::homogeneous(4, 1e-3, 1e-4, 60).expect("valid");
    let out = run_holm(&small, &a, &b, c0.clone(), 0.0).expect("runtime");
    match verify_product(&out.c, &c0, &a, &b, 1e-9) {
        Ok(err) => println!(
            "threaded runtime: {} blocks moved by {} workers in {:?}; result verified \
             (max abs error {err:.2e})",
            out.blocks_moved, out.workers_used, out.wall
        ),
        Err(err) => panic!("runtime produced a wrong product (error {err})"),
    }
}

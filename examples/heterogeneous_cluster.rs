//! Heterogeneous scheduling walkthrough on the paper's Table 2 platform:
//! steady-state bound, the three incremental selection rules, and the
//! two-phase simulated execution.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use master_worker_matrix::prelude::*;
use mwp_core::algorithms::heterogeneous::simulate_heterogeneous;
use mwp_core::selection::incremental::{asymptotic_ratio, run_selection_with_mu};

fn main() {
    // Table 2: three workers with very different links, speeds, memories.
    let platform = Platform::new(vec![
        WorkerParams::new(2.0, 2.0, 60),  // P1: µ = 6
        WorkerParams::new(3.0, 3.0, 396), // P2: µ = 18
        WorkerParams::new(5.0, 1.0, 140), // P3: µ = 10
    ])
    .expect("valid platform");
    let mu = vec![6, 18, 10];

    // ------------------------------------------------------------------
    // 1. Steady-state (bandwidth-centric) upper bound.
    // ------------------------------------------------------------------
    let ss = steady_state(&platform);
    println!("steady-state bound: ρ = {:.4} block updates / time unit", ss.throughput);
    for e in &ss.enrolled {
        println!(
            "  {} enrolled at rate {:.4} ({}% of the port)",
            e.worker,
            e.rate,
            (e.port_share * 100.0).round()
        );
    }
    println!("  memory-feasible as-is: {}\n", ss.memory_feasible(&platform));

    // ------------------------------------------------------------------
    // 2. Incremental selection: the paper's three variants.
    // ------------------------------------------------------------------
    for (rule, paper) in [
        (SelectionRule::Global, 1.17),
        (SelectionRule::Local, 1.21),
        (SelectionRule::TwoStepLookahead, 1.30),
    ] {
        let ratio = asymptotic_ratio(&platform, &mu, rule, 1_000_000);
        println!("{rule:?}: asymptotic ratio {ratio:.3} (paper: {paper})");
    }

    // First selections of Algorithm 3 (the paper's worked example).
    let trace = run_selection_with_mu(&platform, &mu, SelectionRule::Global, 36, 36, 4);
    let first: Vec<String> = trace.steps.iter().take(5).map(|s| s.worker.to_string()).collect();
    println!("\nAlgorithm 3 first selections: {} (paper: P2, P1, P3, …)", first.join(", "));

    // ------------------------------------------------------------------
    // 3. Two-phase execution, simulated end to end.
    // ------------------------------------------------------------------
    let problem = Partition::from_blocks(36, 72, 200, 80);
    println!("\ntwo-phase execution of {problem}:");
    for rule in [
        SelectionRule::Global,
        SelectionRule::Local,
        SelectionRule::TwoStepLookahead,
    ] {
        let report = simulate_heterogeneous(&platform, &problem, rule).expect("simulation");
        println!(
            "  {rule:?}: makespan {:.0}, throughput {:.3} ({}% of steady state), \
             {} workers active",
            report.makespan.value(),
            report.throughput(),
            (100.0 * report.throughput() / ss.throughput).round(),
            report.workers_used()
        );
    }
}

//! The paper's motivating scenario (Section 1): a MATLAB/SCILAB-style
//! compute server. A client session holds matrices on the server (the
//! master); multiplications are farmed out to whatever workers the server
//! enrolled, and the results come back to the session — the data never
//! "lives" on the workers.
//!
//! ```text
//! cargo run --release --example matlab_server
//! ```

use master_worker_matrix::prelude::*;
use mwp_blockmat::fill::random_matrix;
use mwp_blockmat::gemm::verify_product;
use mwp_blockmat::norms::frobenius;

/// A toy "session": named matrices living on the master.
struct Session {
    platform: Platform,
    vars: std::collections::HashMap<String, BlockMatrix>,
}

impl Session {
    fn new(platform: Platform) -> Self {
        Session { platform, vars: std::collections::HashMap::new() }
    }

    /// `name = random(rows, cols)` — create data on the server.
    fn assign_random(&mut self, name: &str, rows: usize, cols: usize, q: usize, seed: u64) {
        self.vars.insert(name.to_string(), random_matrix(rows, cols, q, seed));
    }

    /// `target = target + a * b` — offloaded to the workers via the
    /// paper's algorithm; the session only sees the result.
    fn gemm(&mut self, target: &str, a: &str, b: &str) -> u64 {
        let a = self.vars[a].clone();
        let b = self.vars[b].clone();
        let c = self.vars[target].clone();
        let out = run_holm(&self.platform, &a, &b, c, 0.0).expect("offload succeeds");
        let blocks = out.blocks_moved;
        self.vars.insert(target.to_string(), out.c);
        blocks
    }

    fn get(&self, name: &str) -> &BlockMatrix {
        &self.vars[name]
    }
}

fn main() {
    // The server enrolled four workstations of mixed generations — but
    // the session API does not care; enrollment is the server's problem.
    let platform = Platform::homogeneous(4, 2e-3, 4e-4, 60).expect("valid platform");
    let mut session = Session::new(platform);

    let q = 20;
    session.assign_random("A", 8, 6, q, 11);
    session.assign_random("B", 6, 10, q, 12);
    session.assign_random("C", 8, 10, q, 13);
    let c_before = session.get("C").clone();

    println!("session: C = C + A*B on the server's workers…");
    let blocks = session.gemm("C", "A", "B");

    let a = session.get("A").clone();
    let b = session.get("B").clone();
    let c_after = session.get("C");
    let err = verify_product(c_after, &c_before, &a, &b, 1e-9)
        .expect("server returned a correct product");
    println!(
        "done: ‖C‖_F = {:.3}, {} blocks crossed the server port, max abs error {err:.2e}",
        frobenius(c_after),
        blocks
    );

    // Chain another product to show the data stays server-side.
    session.assign_random("D", 10, 4, q, 14);
    session.assign_random("E", 8, 4, q, 15);
    let e_before = session.get("E").clone();
    let blocks = session.gemm("E", "C", "D");
    let c_now = session.get("C").clone();
    let d = session.get("D").clone();
    verify_product(session.get("E"), &e_before, &c_now, &d, 1e-8)
        .expect("second product verified");
    println!("chained: E = E + C*D verified, {blocks} more blocks moved");
}

//! Minimal local stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits plus no-op derive
//! macros under the same names (mirroring real serde's layout, where the
//! trait and the derive share a path). Enough for code that derives the
//! traits without ever driving a serializer.

/// Marker: the type is serialization-ready.
pub trait Serialize {}

/// Marker: the type is deserialization-ready.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

//! Minimal local stand-in for `proptest`.
//!
//! Deterministic property testing: each `proptest!` test runs its body for
//! `ProptestConfig::cases` inputs drawn from the given strategies with a
//! fixed-seed PRNG (same inputs every run — reproducible CI). Supported
//! strategy surface: numeric ranges, tuples of strategies, and `prop_map`.

use std::fmt;
use std::ops::Range;

/// Deterministic xorshift64* generator driving input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded source; the seed is derived from the test name so different
    /// tests explore different inputs while staying reproducible.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value. The first few draws of a range strategy visit its
    /// boundary values (classic edge-case bias), then sampling is uniform.
    fn sample(&self, case: usize, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, case: usize, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(case, rng))
    }
}

/// Always produces the same value.
#[derive(Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _case: usize, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, case: usize, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Bias the first two cases toward the boundaries.
                let v = match case {
                    0 => 0,
                    1 => span - 1,
                    _ => (rng.next_u64() as u128) % span,
                };
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, case: usize, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = match case {
            0 => 0.0,
            1 => 1.0 - f64::EPSILON,
            _ => rng.unit_f64(),
        };
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, case: usize, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(case, rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Failure of a single generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The inputs do not satisfy an assumption; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Stable 64-bit FNV-1a over the test name, seeding its input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every generated input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                let strategy = ($($s,)+);
                for case in 0..config.cases as usize {
                    let ($($p,)+) = $crate::Strategy::sample(&strategy, case, &mut rng);
                    #[allow(unreachable_code)]
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} failed at generated case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a property inside `proptest!`; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({a:?} vs {b:?})",
                stringify!($a), stringify!($b),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Skip the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::seed_from_name;

    fn doubled() -> impl Strategy<Value = usize> {
        (1usize..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y} out of range");
        }

        #[test]
        fn mapped_strategy_applies(d in doubled()) {
            prop_assert_eq!(d % 2, 0);
            prop_assert!((2..100).contains(&d));
        }

        #[test]
        fn tuple_strategies_work((a, b) in (1u32..5, 1u32..5)) {
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(n in 0u64..100) {
            prop_assert!(n < 100);
        }
    }

    #[test]
    fn boundary_bias_hits_edges() {
        let mut rng = TestRng::new(1);
        let s = 5usize..9;
        assert_eq!(s.sample(0, &mut rng), 5);
        assert_eq!(s.sample(1, &mut rng), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(seed_from_name("t"));
        let mut b = TestRng::new(seed_from_name("t"));
        for case in 0..20 {
            assert_eq!((0usize..1000).sample(case, &mut a), (0usize..1000).sample(case, &mut b));
        }
    }
}

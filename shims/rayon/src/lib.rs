//! Minimal local stand-in for `rayon`.
//!
//! Real data parallelism (no sequential fallback): work is split into
//! contiguous chunks across `available_parallelism()` OS threads with
//! `std::thread::scope`. Only the API subset this workspace uses is
//! provided:
//!
//! * `range.into_par_iter().map(f).collect::<Vec<_>>()` (ordered),
//! * `vec.into_par_iter().map(f).collect::<Vec<_>>()` (ordered),
//! * `slice.par_iter_mut().for_each(f)` and `.enumerate().for_each(f)`.
//!
//! Unlike rayon there is no work-stealing pool; each call spawns scoped
//! threads. That is the right trade-off here: the callers parallelize
//! coarse block-level work (whole `q × q` GEMMs, whole experiment tables)
//! where spawn cost is noise.

use std::ops::Range;

/// Number of worker threads to fan out over.
fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Ceiling division, never zero.
fn chunk_size(len: usize, parts: usize) -> usize {
    len.div_ceil(parts.max(1)).max(1)
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParallelIterator};
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// The operations our parallel iterators support.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drain into an ordered `Vec`, running `self` in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Map each element through `f` (applied in parallel at drain time).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { inner: self, f }
    }

    /// Collect into any container, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Apply `f` to every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self::Item: Send,
    {
        self.map(f).run();
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn run(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator; the parallel fan-out happens in `run`.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        let items = self.inner.run();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = &self.f;
        let nt = threads().min(n);
        if nt <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = chunk_size(n, nt);
        // Split the owned items into per-thread chunks, preserving order.
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(nt);
        let mut it = items.into_iter();
        loop {
            let c: Vec<I::Item> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let mut results: Vec<Vec<U>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect();
        });
        results.into_iter().flatten().collect()
    }
}

/// `par_iter_mut` on slices and vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self.as_mut_slice() }
    }
}

/// Parallel mutable iterator over a slice.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, t)| f(t));
    }
}

/// Enumerated parallel mutable iterator.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Apply `f(index, &mut element)` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let nt = threads().min(n);
        if nt <= 1 {
            for (i, t) in self.slice.iter_mut().enumerate() {
                f((i, t));
            }
            return;
        }
        let chunk = chunk_size(n, nt);
        let f = &f;
        std::thread::scope(|s| {
            for (ci, part) in self.slice.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (k, t) in part.iter_mut().enumerate() {
                        f((ci * chunk + k, t));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn vec_map_collect_preserves_order() {
        let v: Vec<String> = vec![3u32, 1, 4, 1, 5]
            .into_par_iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(v, vec!["3", "1", "4", "1", "5"]);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![0u64; 999];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..256).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        // With >1 hardware threads the work must have spread out.
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(ids.lock().unwrap().len() > 1, "all work ran on one thread");
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut e: Vec<u8> = Vec::new();
        e.par_iter_mut().for_each(|_| unreachable!());
    }
}

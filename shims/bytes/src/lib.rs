//! Minimal local stand-in for the `bytes` crate.
//!
//! Provides the one type this workspace uses: [`Bytes`], an immutable,
//! reference-counted byte buffer whose clones and slices share the same
//! backing storage (clone = refcount bump, never a copy). The API is the
//! subset of `bytes::Bytes` the message layer consumes.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage — no allocation at all.
    Static(&'static [u8]),
    /// Shared ownership of a heap buffer. `From<Vec<u8>>` takes the vector
    /// without copying its contents.
    Shared(Arc<Vec<u8>>),
    /// Shared ownership of an arbitrary byte owner whose `Drop` runs when
    /// the last view goes away (the hook buffer pools use to reclaim
    /// storage).
    Owner(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

/// An immutable, cheaply cloneable byte buffer.
///
/// Cloning or slicing never copies the underlying bytes; both operations
/// produce a new view onto the same reference-counted storage.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// A view over static data (no allocation).
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s), off: 0, len: s.len() }
    }

    /// Copy `s` into fresh shared storage.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Wrap an arbitrary byte owner without copying. The owner is dropped
    /// when the last `Bytes` view (clone or slice) is dropped — which lets
    /// pools reclaim buffers through the owner's `Drop` impl.
    pub fn from_owner<T: AsRef<[u8]> + Send + Sync + 'static>(owner: T) -> Self {
        let len = owner.as_ref().len();
        Bytes { repr: Repr::Owner(Arc::new(owner)), off: 0, len }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view sharing the same backing storage (refcount bump).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds of {}", self.len);
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Pointer to the first byte of this view (stable across clones of the
    /// same view — used by zero-copy sharing tests).
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.off..self.off + self.len],
            Repr::Shared(v) => &v[self.off..self.off + self.len],
            Repr::Owner(o) => &o.as_ref().as_ref()[self.off..self.off + self.len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the vector without copying the contents.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&*b, &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_shares_storage() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(2) });
        let s2 = s.slice(1..);
        assert_eq!(&*s2, &[3, 4]);
    }

    #[test]
    fn from_vec_does_not_copy() {
        let v = vec![9u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p);
    }

    #[test]
    fn equality_by_content() {
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::from_static(&[1, 2]));
        assert_ne!(Bytes::from(vec![1, 2]), Bytes::new());
    }

    #[test]
    fn owner_dropped_with_last_view() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;
        struct Owner(Vec<u8>, StdArc<AtomicBool>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Owner {
            fn drop(&mut self) {
                self.1.store(true, Ordering::SeqCst);
            }
        }
        let dropped = StdArc::new(AtomicBool::new(false));
        let b = Bytes::from_owner(Owner(vec![1, 2, 3], dropped.clone()));
        let s = b.slice(1..);
        assert_eq!(&*s, &[2, 3]);
        drop(b);
        assert!(!dropped.load(Ordering::SeqCst), "slice still alive");
        drop(s);
        assert!(dropped.load(Ordering::SeqCst), "owner must drop with last view");
    }
}

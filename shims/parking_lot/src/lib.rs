//! Minimal local stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's poison-free
//! API: `lock()` returns the guard directly and `Condvar::wait` takes the
//! guard by `&mut`. Poisoned locks are transparently recovered (the data
//! is still returned), matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual exclusion primitive (no lock poisoning).
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(t: T) -> Self {
        Mutex(StdMutex::new(t))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], which takes the std guard out and puts the
/// reacquired one back before returning.
pub struct MutexGuard<'a, T: ?Sized>(Option<StdGuard<'a, T>>);

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(StdCondvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }
}

//! Minimal local stand-in for `rand`.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through splitmix64 — a stable,
//! portable, deterministic PRNG (seed → identical stream on every platform
//! and every run, which the workspace's seeded test fixtures rely on). The
//! trait surface is the subset used here: `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` over float and integer ranges.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for any [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // 2^-53 granularity makes the closed/open distinction academic.
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(-0.03..=0.03);
            assert!((-0.03..=0.03).contains(&y));
            let n: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}

//! Minimal local stand-in for `criterion`.
//!
//! A real measuring harness (calibration pass → timed pass → ns/iter
//! report) exposing the API subset the workspace's benches use:
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `throughput`, `BenchmarkId`, `Throughput`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Set `MWP_BENCH_JSON=<path>` to append one JSON line per benchmark
//! (`{"name": ..., "ns_per_iter": ...}`) — the format the workspace's
//! `BENCH_baseline.json` tooling consumes.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget for the measurement pass of each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);
/// Hard cap on iterations for very fast routines.
const MAX_ITERS: u64 = 10_000_000;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim sizes its measurement pass
    /// by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput is not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into_benchmark_id()), f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Identifier from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the string id the shim reports under.
pub trait IntoBenchmarkId {
    /// The final id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple.
    BytesDecimal(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it as many times as the harness requested.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibration pass: one iteration to estimate the per-call cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
    // Measurement pass.
    b.iters = iters;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench {name:<40} {:>14.1} ns/iter  ({iters} iters)", ns);
    if let Ok(path) = std::env::var("MWP_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) =
                std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(file, "{{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}");
            }
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        assert!(runs >= 2, "closure must run calibration + measurement");
    }
}

//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives serde traits only to keep its public types
//! serialization-ready; nothing in-tree performs actual serde
//! serialization (the one JSON emitter is hand-rolled). These derives
//! therefore expand to nothing, letting `#[derive(Serialize, Deserialize)]`
//! compile without the real serde machinery.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

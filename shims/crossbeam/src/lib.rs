//! Minimal local stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (which since Rust 1.72 *is* the crossbeam channel implementation). The
//! names match the subset the message layer uses: `unbounded`, `Sender`,
//! `Receiver`, `RecvError`, `RecvTimeoutError`, `TryRecvError`,
//! `SendError`.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn roundtrip_and_errors() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err()); // empty
        drop(tx);
        assert!(rx.recv().is_err()); // disconnected
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 4950);
        h.join().unwrap();
    }
}
